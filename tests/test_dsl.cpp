/**
 * @file
 * Unit tests for the DSL (paper §3): collective pre/postconditions,
 * the chunk()/copy()/reduce() tracing semantics, the stale-reference
 * discipline that makes programs race free by construction, scratch
 * auto-sizing, parallelize scopes and presetChunk.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "dsl/program.h"

namespace mscclang {
namespace {

std::shared_ptr<AllReduceCollective>
allreduce(int ranks, int chunks)
{
    return std::make_shared<AllReduceCollective>(ranks, chunks);
}

// ---------------------------------------------------------------
// Collective definitions.

TEST(Collectives, AllReduceShape)
{
    AllReduceCollective coll(4, 8);
    EXPECT_EQ(coll.inputChunkCount(0), 8);
    EXPECT_EQ(coll.outputChunkCount(3), 8);
    EXPECT_TRUE(coll.inPlace());
    EXPECT_DOUBLE_EQ(coll.outputScale(), 1.0);
    auto expected = coll.expectedOutput(2, 5);
    ASSERT_TRUE(expected.has_value());
    EXPECT_EQ(expected->parts().size(), 4u);
    for (int r = 0; r < 4; r++)
        EXPECT_EQ(expected->parts()[r], (InputChunkId{ r, 5 }));
}

TEST(Collectives, AllGatherShape)
{
    AllGatherCollective coll(3, 2);
    EXPECT_EQ(coll.inputChunkCount(0), 2);
    EXPECT_EQ(coll.outputChunkCount(0), 6);
    EXPECT_FALSE(coll.inPlace());
    EXPECT_DOUBLE_EQ(coll.outputScale(), 3.0);
    EXPECT_EQ(*coll.expectedOutput(1, 3), ChunkValue::input(1, 1));
    EXPECT_EQ(*coll.expectedOutput(0, 4), ChunkValue::input(2, 0));
}

TEST(Collectives, ReduceScatterShape)
{
    ReduceScatterCollective coll(4, 2);
    EXPECT_EQ(coll.inputChunkCount(0), 8);
    EXPECT_EQ(coll.outputChunkCount(0), 2);
    EXPECT_DOUBLE_EQ(coll.outputScale(), 0.25);
    auto expected = coll.expectedOutput(1, 0);
    ASSERT_TRUE(expected.has_value());
    // output chunk 0 of rank 1 = sum over ranks of input chunk 2.
    for (const InputChunkId &part : expected->parts())
        EXPECT_EQ(part.index, 2);
}

TEST(Collectives, AllToAllTransposes)
{
    AllToAllCollective coll(3, 2);
    EXPECT_EQ(coll.inputChunkCount(0), 6);
    // output block s of rank r <- input block r of rank s
    EXPECT_EQ(*coll.expectedOutput(1, 4), ChunkValue::input(2, 2));
    EXPECT_EQ(*coll.expectedOutput(1, 5), ChunkValue::input(2, 3));
}

TEST(Collectives, AllToNextLeavesFirstRankUnconstrained)
{
    AllToNextCollective coll(4, 3);
    EXPECT_FALSE(coll.expectedOutput(0, 0).has_value());
    EXPECT_EQ(*coll.expectedOutput(2, 1), ChunkValue::input(1, 1));
}

TEST(Collectives, BroadcastFromRoot)
{
    BroadcastCollective coll(4, 2, 1);
    EXPECT_EQ(*coll.expectedOutput(3, 1), ChunkValue::input(1, 1));
    EXPECT_THROW(BroadcastCollective(4, 2, 9), Error);
}

TEST(Collectives, CustomValidation)
{
    EXPECT_THROW(CustomCollective("x", 2, 1, false, 1, 1, nullptr),
                 Error);
    EXPECT_THROW(CustomCollective("x", 0, 1, false, 1, 1,
                                  [](Rank, int) { return std::nullopt; }),
                 Error);
}

// ---------------------------------------------------------------
// Tracing semantics.

TEST(Program, PreconditionSeedsInputChunks)
{
    Program prog(allreduce(2, 3));
    EXPECT_EQ(prog.valueAt(1, BufferKind::Input, 2),
              ChunkValue::input(1, 2));
}

TEST(Program, CopyMovesValue)
{
    Program prog(allreduce(2, 2));
    prog.chunk(0, BufferKind::Input, 1).copy(1, BufferKind::Scratch, 0);
    EXPECT_EQ(prog.valueAt(1, BufferKind::Scratch, 0),
              ChunkValue::input(0, 1));
    ASSERT_EQ(prog.ops().size(), 1u);
    EXPECT_EQ(prog.ops()[0].kind, OpKind::Copy);
}

TEST(Program, ReduceCombinesInPlace)
{
    Program prog(allreduce(2, 2));
    ChunkRef remote = prog.chunk(0, BufferKind::Input, 0);
    prog.chunk(1, BufferKind::Input, 0).reduce(remote);
    EXPECT_EQ(prog.valueAt(1, BufferKind::Input, 0),
              ChunkValue::reduce(ChunkValue::input(0, 0),
                                 ChunkValue::input(1, 0)));
    // the operand rank's buffer is untouched
    EXPECT_EQ(prog.valueAt(0, BufferKind::Input, 0),
              ChunkValue::input(0, 0));
}

TEST(Program, StaleReferenceRejected)
{
    Program prog(allreduce(2, 2));
    ChunkRef old_ref = prog.chunk(0, BufferKind::Input, 0);
    // Overwrite location (0, in, 0) via a copy from rank 1.
    prog.chunk(1, BufferKind::Input, 0).copy(0, BufferKind::Input, 0);
    EXPECT_THROW(old_ref.copy(1, BufferKind::Scratch, 0), ProgramError);
}

TEST(Program, StaleReduceTargetRejected)
{
    Program prog(allreduce(2, 2));
    ChunkRef target = prog.chunk(0, BufferKind::Input, 0);
    prog.chunk(1, BufferKind::Input, 0).copy(0, BufferKind::Input, 0);
    ChunkRef operand = prog.chunk(0, BufferKind::Input, 1);
    EXPECT_THROW(target.reduce(operand), ProgramError);
}

TEST(Program, FreshReferenceAfterOverwriteWorks)
{
    Program prog(allreduce(2, 2));
    prog.chunk(1, BufferKind::Input, 0).copy(0, BufferKind::Input, 0);
    // Re-acquiring the latest reference is the sanctioned pattern.
    ChunkRef fresh = prog.chunk(0, BufferKind::Input, 0);
    fresh.copy(1, BufferKind::Scratch, 0);
    EXPECT_EQ(prog.valueAt(1, BufferKind::Scratch, 0),
              ChunkValue::input(1, 0));
}

TEST(Program, UninitializedReadRejected)
{
    Program prog(std::make_shared<AllGatherCollective>(2, 1));
    EXPECT_THROW(prog.chunk(0, BufferKind::Output, 0), ProgramError);
    EXPECT_THROW(prog.chunk(0, BufferKind::Scratch, 3), ProgramError);
}

TEST(Program, UninitializedReduceRejected)
{
    Program prog(std::make_shared<AllGatherCollective>(2, 1));
    ChunkRef in = prog.chunk(0, BufferKind::Input, 0);
    ChunkRef out = in.copy(0, BufferKind::Output, 0);
    // reduce with an uninitialized neighbour location via a ref to
    // the copied location is fine; reducing INTO uninitialized is
    // impossible because chunk() refuses to hand out the reference.
    EXPECT_THROW(prog.chunk(0, BufferKind::Output, 1), ProgramError);
    (void)out;
}

TEST(Program, OutOfBoundsRejected)
{
    Program prog(allreduce(2, 2));
    EXPECT_THROW(prog.chunk(0, BufferKind::Input, 2), ProgramError);
    EXPECT_THROW(prog.chunk(2, BufferKind::Input, 0), ProgramError);
    EXPECT_THROW(prog.chunk(0, BufferKind::Input, 0, 3), ProgramError);
    EXPECT_THROW(prog.chunk(0, BufferKind::Input, -1), ProgramError);
}

TEST(Program, ScratchGrowsOnDemand)
{
    Program prog(allreduce(2, 2));
    EXPECT_EQ(prog.scratchChunkCount(0), 0);
    prog.chunk(0, BufferKind::Input, 0)
        .copy(0, BufferKind::Scratch, 9);
    EXPECT_EQ(prog.scratchChunkCount(0), 10);
    EXPECT_EQ(prog.scratchChunkCount(1), 0); // per rank
}

TEST(Program, InPlaceAliasesOutputOntoInput)
{
    Program prog(allreduce(2, 2));
    prog.chunk(1, BufferKind::Input, 0).copy(0, BufferKind::Output, 0);
    // The write through "Output" is visible through "Input".
    EXPECT_EQ(prog.valueAt(0, BufferKind::Input, 0),
              ChunkValue::input(1, 0));
}

TEST(Program, MismatchedReduceCountsRejected)
{
    Program prog(allreduce(2, 4));
    ChunkRef two = prog.chunk(0, BufferKind::Input, 0, 2);
    ChunkRef three = prog.chunk(1, BufferKind::Input, 0, 3);
    EXPECT_THROW(three.reduce(two), ProgramError);
}

TEST(Program, PartiallyOverlappingReduceRejected)
{
    Program prog(allreduce(1, 4));
    ChunkRef a = prog.chunk(0, BufferKind::Input, 0, 2);
    ChunkRef b = prog.chunk(0, BufferKind::Input, 1, 2);
    EXPECT_THROW(a.reduce(b), ProgramError);
}

TEST(Program, ChannelDirectiveRecorded)
{
    Program prog(allreduce(2, 2));
    prog.chunk(0, BufferKind::Input, 0)
        .copy(1, BufferKind::Scratch, 0, OpOptions{ 5 });
    EXPECT_EQ(prog.ops()[0].channel, 5);
}

TEST(Program, ParallelizeScopesNestMultiplicatively)
{
    Program prog(allreduce(2, 2));
    {
        ParallelizeScope outer = prog.parallelize(2);
        prog.chunk(0, BufferKind::Input, 0)
            .copy(1, BufferKind::Scratch, 0);
        {
            ParallelizeScope inner = prog.parallelize(3);
            prog.chunk(0, BufferKind::Input, 1)
                .copy(1, BufferKind::Scratch, 1);
        }
    }
    prog.chunk(1, BufferKind::Input, 0).copy(0, BufferKind::Scratch, 0);
    ASSERT_EQ(prog.ops().size(), 3u);
    EXPECT_EQ(prog.ops()[0].parFactor, 2);
    EXPECT_EQ(prog.ops()[1].parFactor, 6);
    EXPECT_EQ(prog.ops()[2].parFactor, 1);
    EXPECT_THROW(prog.parallelize(0), ProgramError);
}

TEST(Program, PresetChunkOnlyBeforeOps)
{
    Program prog(std::make_shared<AllGatherCollective>(2, 1));
    prog.presetChunk(0, BufferKind::Scratch, 0, ChunkValue::input(1, 0));
    ChunkRef c = prog.chunk(0, BufferKind::Scratch, 0);
    c.copy(0, BufferKind::Output, 1);
    EXPECT_EQ(prog.valueAt(0, BufferKind::Output, 1),
              ChunkValue::input(1, 0));
    EXPECT_THROW(prog.presetChunk(0, BufferKind::Scratch, 1,
                                  ChunkValue::input(0, 0)),
                 ProgramError);
}

TEST(Program, CheckPostconditionDetectsIncompletePrograms)
{
    // A "ring" that skips the AllGather phase: reduced values exist
    // on one rank only, so the postcondition must fail.
    Program prog(allreduce(2, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    prog.chunk(1, BufferKind::Input, 0).reduce(c);
    EXPECT_THROW(prog.checkPostcondition(), VerificationError);
}

TEST(Program, CheckPostconditionAcceptsCorrectPrograms)
{
    Program prog(allreduce(2, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    c = prog.chunk(1, BufferKind::Input, 0).reduce(c);
    c.copy(0, BufferKind::Input, 0);
    prog.checkPostcondition();
}

TEST(Program, InPlaceRequiresMatchingChunkCounts)
{
    auto bad = std::make_shared<CustomCollective>(
        "bad", 2, 1, /*in_place=*/true, /*in=*/2, /*out=*/3,
        [](Rank, int) { return std::nullopt; });
    EXPECT_THROW(Program prog(bad), ProgramError);
}

TEST(Program, InstancesMustBePositive)
{
    ProgramOptions options;
    options.instances = 0;
    EXPECT_THROW(Program(allreduce(2, 1), options), ProgramError);
}

} // namespace
} // namespace mscclang
