/**
 * @file
 * Tests for the XML reader/writer and the MSCCL-IR exchange format:
 * parser features and error reporting, escaping, and exact IR
 * round-trips for every collective in the library.
 */

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "ir/xml.h"

namespace mscclang {
namespace {

TEST(Xml, ParsesAttributesAndChildren)
{
    XmlNode root = parseXml(
        "<a x=\"1\" y='two'><b/><c z=\"3\"></c></a>");
    EXPECT_EQ(root.tag, "a");
    EXPECT_EQ(root.attrInt("x"), 1);
    EXPECT_EQ(root.attr("y"), "two");
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].tag, "b");
    EXPECT_EQ(root.children[1].attrInt("z"), 3);
}

TEST(Xml, SkipsCommentsAndProlog)
{
    XmlNode root = parseXml(
        "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>");
    EXPECT_EQ(root.tag, "a");
    EXPECT_EQ(root.children.size(), 1u);
}

TEST(Xml, UnescapesEntities)
{
    XmlNode root = parseXml("<a v=\"&lt;&amp;&gt;&quot;&apos;\"/>");
    EXPECT_EQ(root.attr("v"), "<&>\"'");
}

TEST(Xml, NumericCharacterReferences)
{
    // Decimal and hex forms, lower/upper hex digits, byte range.
    XmlNode root = parseXml("<a v=\"&#65;&#x42;&#x63;&#10;&#x7F;\"/>");
    EXPECT_EQ(root.attr("v"), std::string("ABc\n\x7F"));
    // Out-of-byte-range and malformed references are rejected.
    EXPECT_THROW(parseXml("<a v=\"&#256;\"/>"), Error);
    EXPECT_THROW(parseXml("<a v=\"&#x100;\"/>"), Error);
    EXPECT_THROW(parseXml("<a v=\"&#;\"/>"), Error);
    EXPECT_THROW(parseXml("<a v=\"&#x;\"/>"), Error);
    EXPECT_THROW(parseXml("<a v=\"&#12a;\"/>"), Error);
}

TEST(Xml, UnterminatedEntityScanIsBounded)
{
    // A stray '&' must fail fast with "unterminated entity" instead
    // of scanning to the end of the value (or matching a ';' far
    // away and reporting the swallowed text as an unknown entity).
    EXPECT_THROW(parseXml("<a v=\"a &amp b\"/>"), Error);
    try {
        parseXml("<a v=\"x & yyyyyyyyyyyyyyyyyyy ; z\"/>");
        FAIL() << "expected the bounded entity scan to reject this";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("unterminated entity"),
                  std::string::npos);
    }
    EXPECT_THROW(parseXml("<a v=\"dangling &quo\"/>"), Error);
}

TEST(Xml, ControlCharactersRoundTripThroughAttributes)
{
    // xmlEscape emits numeric references for control characters so a
    // write-then-parse round trip is byte-exact.
    std::string nasty = "line1\nline2\ttab\rret\x01\x1F\x7F end";
    EXPECT_EQ(xmlEscape("\n"), "&#10;");
    XmlWriter writer;
    writer.open("a");
    writer.attr("v", nasty);
    writer.close();
    XmlNode root = parseXml(writer.str());
    EXPECT_EQ(root.attr("v"), nasty);
}

TEST(Xml, AttrHelpers)
{
    XmlNode root = parseXml("<a x=\"5\" f=\"2.5\"/>");
    EXPECT_TRUE(root.hasAttr("x"));
    EXPECT_FALSE(root.hasAttr("q"));
    EXPECT_EQ(root.attrOr("q", "dflt"), "dflt");
    EXPECT_EQ(root.attrIntOr("q", 9), 9);
    EXPECT_DOUBLE_EQ(root.attrDouble("f"), 2.5);
    EXPECT_THROW(root.attr("missing"), Error);
    EXPECT_EQ(root.attrInt("f"), 2); // stoi truncates "2.5"
}

TEST(Xml, RejectsMalformedInput)
{
    EXPECT_THROW(parseXml(""), Error);
    EXPECT_THROW(parseXml("<a>"), Error);
    EXPECT_THROW(parseXml("<a></b>"), Error);
    EXPECT_THROW(parseXml("<a x=1/>"), Error);
    EXPECT_THROW(parseXml("<a>text</a>"), Error);
    EXPECT_THROW(parseXml("<a/><b/>"), Error);
    EXPECT_THROW(parseXml("<a v=\"&bogus;\"/>"), Error);
}

TEST(Xml, WriterProducesParsableNesting)
{
    XmlWriter writer;
    writer.open("root");
    writer.attr("n", 2);
    writer.open("child");
    writer.attr("s", "a<b");
    writer.close();
    writer.open("child");
    writer.close();
    writer.close();
    XmlNode root = parseXml(writer.str());
    EXPECT_EQ(root.tag, "root");
    EXPECT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children[0].attr("s"), "a<b");
}

TEST(Xml, WriterRejectsMisuse)
{
    XmlWriter writer;
    EXPECT_THROW(writer.attr("x", 1), Error);
    EXPECT_THROW(writer.close(), Error);
    writer.open("a");
    EXPECT_THROW(writer.str(), Error); // unclosed
}

TEST(IrXml, RoundTripsEveryCollective)
{
    Topology dgx1 = makeDgx1();
    std::vector<std::unique_ptr<Program>> programs;
    AlgoConfig config;
    config.instances = 2;
    config.protocol = Protocol::LL;
    programs.push_back(makeRingAllReduce(4, 2, config));
    programs.push_back(makeAllPairsAllReduce(4, config));
    programs.push_back(makeHierarchicalAllReduce(2, 3, 2, config));
    programs.push_back(makeTwoStepAllToAll(2, 2, config));
    programs.push_back(makeAllToNext(2, 3, config));
    programs.push_back(makeRingAllGather(4, 2, config));
    programs.push_back(makeSccl122AllGather(dgx1, config));
    for (auto &prog : programs) {
        Compiled out = compileProgram(*prog);
        IrProgram reloaded = IrProgram::fromXml(out.ir.toXml());
        EXPECT_EQ(reloaded, out.ir) << prog->options().name;
    }
}

TEST(IrXml, RejectsUnknownStructure)
{
    EXPECT_THROW(IrProgram::fromXml("<wrong/>"), Error);
    EXPECT_THROW(IrProgram::fromXml("<algo nranks=\"1\"><oops/></algo>"),
                 Error);
    EXPECT_THROW(IrProgram::fromXml(
                     "<algo nranks=\"1\"><gpu id=\"0\" i_chunks=\"1\" "
                     "o_chunks=\"1\" s_chunks=\"0\"><tb id=\"0\" "
                     "send=\"-1\" recv=\"-1\" chan=\"0\">"
                     "<step s=\"0\" type=\"xyz\" srcbuf=\"i\" "
                     "srcoff=\"0\" dstbuf=\"o\" dstoff=\"0\" "
                     "cnt=\"1\" hasdep=\"0\"/></tb></gpu></algo>"),
                 Error);
}

TEST(IrXml, DumpMentionsEveryThreadBlock)
{
    Compiled out = compileProgram(*makeRingAllReduce(4, 1, {}));
    std::string dump = out.ir.dump();
    for (const IrGpu &gpu : out.ir.gpus) {
        EXPECT_NE(dump.find(strprintf("gpu %d", gpu.rank)),
                  std::string::npos);
    }
}

TEST(IrOps, NameTableRoundTrips)
{
    for (IrOp op : { IrOp::Nop, IrOp::Send, IrOp::Recv, IrOp::Copy,
                     IrOp::Reduce, IrOp::RecvReduceCopy,
                     IrOp::RecvReduceSend, IrOp::RecvReduceCopySend,
                     IrOp::RecvCopySend }) {
        EXPECT_EQ(irOpFromName(irOpName(op)), op);
    }
    EXPECT_THROW(irOpFromName("nope"), Error);
}

TEST(IrOps, SemanticPredicatesAreConsistent)
{
    // Every op that sends or receives participates in communication;
    // rrs is the only receiving op that does not write memory.
    EXPECT_TRUE(irOpSends(IrOp::RecvReduceSend));
    EXPECT_FALSE(irOpWritesDst(IrOp::RecvReduceSend));
    EXPECT_TRUE(irOpReceives(IrOp::RecvCopySend));
    EXPECT_FALSE(irOpReadsSrc(IrOp::RecvCopySend));
    EXPECT_TRUE(irOpReduces(IrOp::RecvReduceCopySend));
    EXPECT_FALSE(irOpReduces(IrOp::Copy));
}

} // namespace
} // namespace mscclang
