/**
 * @file
 * Unit tests for the chunk value algebra (paper §3.1) and buffer
 * slices: multiset reduction semantics, uninitialized handling,
 * equality, and the exact-rational fraction intervals used for
 * sub-chunk dependence analysis.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/frac.h"
#include "dsl/chunk.h"

namespace mscclang {
namespace {

TEST(ChunkValue, DefaultIsUninitialized)
{
    ChunkValue value;
    EXPECT_FALSE(value.initialized());
    EXPECT_TRUE(value.parts().empty());
    EXPECT_FALSE(value.isPureInput());
}

TEST(ChunkValue, InputIsPure)
{
    ChunkValue value = ChunkValue::input(3, 7);
    EXPECT_TRUE(value.initialized());
    EXPECT_TRUE(value.isPureInput());
    ASSERT_EQ(value.parts().size(), 1u);
    EXPECT_EQ(value.parts()[0].rank, 3);
    EXPECT_EQ(value.parts()[0].index, 7);
}

TEST(ChunkValue, ReduceMergesMultisets)
{
    ChunkValue a = ChunkValue::input(0, 1);
    ChunkValue b = ChunkValue::input(1, 1);
    ChunkValue sum = ChunkValue::reduce(a, b);
    EXPECT_FALSE(sum.isPureInput());
    ASSERT_EQ(sum.parts().size(), 2u);
    // Reduction is commutative on the multiset representation.
    EXPECT_EQ(sum, ChunkValue::reduce(b, a));
}

TEST(ChunkValue, ReductionIsMultisetNotSet)
{
    // Summing the same chunk twice is a *different* value than the
    // chunk itself: duplicates matter.
    ChunkValue a = ChunkValue::input(0, 0);
    ChunkValue twice = ChunkValue::reduce(a, a);
    EXPECT_NE(twice, a);
    EXPECT_EQ(twice.parts().size(), 2u);
}

TEST(ChunkValue, ReduceAssociates)
{
    ChunkValue a = ChunkValue::input(0, 0);
    ChunkValue b = ChunkValue::input(1, 0);
    ChunkValue c = ChunkValue::input(2, 0);
    EXPECT_EQ(ChunkValue::reduce(ChunkValue::reduce(a, b), c),
              ChunkValue::reduce(a, ChunkValue::reduce(b, c)));
}

TEST(ChunkValue, ReduceUninitializedThrows)
{
    ChunkValue a = ChunkValue::input(0, 0);
    ChunkValue bottom;
    EXPECT_THROW(ChunkValue::reduce(a, bottom), Error);
    EXPECT_THROW(ChunkValue::reduce(bottom, a), Error);
}

TEST(ChunkValue, ReductionOfNormalizesOrder)
{
    ChunkValue v1 = ChunkValue::reductionOf(
        { InputChunkId{ 2, 0 }, InputChunkId{ 0, 0 } });
    ChunkValue v2 = ChunkValue::reductionOf(
        { InputChunkId{ 0, 0 }, InputChunkId{ 2, 0 } });
    EXPECT_EQ(v1, v2);
    EXPECT_THROW(ChunkValue::reductionOf({}), Error);
}

TEST(ChunkValue, ToStringFormats)
{
    EXPECT_EQ(ChunkValue::input(1, 2).toString(), "(1,2)");
    ChunkValue sum = ChunkValue::reduce(ChunkValue::input(0, 0),
                                        ChunkValue::input(1, 0));
    EXPECT_EQ(sum.toString(), "(0,0)+(1,0)");
}

TEST(BufferSlice, OverlapRules)
{
    BufferSlice a{ 0, BufferKind::Input, 0, 4 };
    BufferSlice b{ 0, BufferKind::Input, 3, 2 };
    BufferSlice c{ 0, BufferKind::Input, 4, 2 };
    BufferSlice other_rank{ 1, BufferKind::Input, 0, 4 };
    BufferSlice other_buf{ 0, BufferKind::Scratch, 0, 4 };
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_FALSE(a.overlaps(other_rank));
    EXPECT_FALSE(a.overlaps(other_buf));
}

TEST(Frac, OrderingAndEquality)
{
    EXPECT_TRUE(Frac::of(1, 3) < Frac::of(1, 2));
    EXPECT_TRUE(Frac::of(2, 4) == Frac::of(1, 2));
    EXPECT_TRUE(Frac::of(0, 1) <= Frac::of(0, 5));
    EXPECT_EQ(Frac::of(2, 4).num, 1);
    EXPECT_EQ(Frac::of(2, 4).den, 2);
}

TEST(Frac, IntervalOverlapAndCover)
{
    FracInterval half{ Frac::of(0, 1), Frac::of(1, 2) };
    FracInterval rest{ Frac::of(1, 2), Frac::of(1, 1) };
    FracInterval all{ Frac::of(0, 1), Frac::of(1, 1) };
    EXPECT_FALSE(half.overlaps(rest)); // half-open intervals
    EXPECT_TRUE(all.overlaps(half));
    EXPECT_TRUE(all.covers(half));
    EXPECT_FALSE(half.covers(all));
    EXPECT_TRUE(half.covers(half));
}

TEST(Frac, SplitFractionPartitions)
{
    // Instances of one op must exactly tile [0, 1) with no overlap.
    for (int n : { 1, 2, 3, 7, 24 }) {
        Frac cursor = Frac::of(0, 1);
        for (int i = 0; i < n; i++) {
            FracInterval part = splitFraction(i, n);
            EXPECT_TRUE(part.lo == cursor);
            cursor = part.hi;
            if (i > 0) {
                EXPECT_FALSE(part.overlaps(splitFraction(i - 1, n)));
            }
        }
        EXPECT_TRUE(cursor == Frac::of(1, 1));
    }
}

TEST(Frac, DifferentSplitsOverlapPartially)
{
    // Instance 0 of 2 covers [0, 1/2); instance 1 of 3 covers
    // [1/3, 2/3): they overlap but neither covers the other.
    FracInterval a = splitFraction(0, 2);
    FracInterval b = splitFraction(1, 3);
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.covers(b));
    EXPECT_FALSE(b.covers(a));
}

} // namespace
} // namespace mscclang
