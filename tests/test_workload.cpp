/**
 * @file
 * Workload layer tests (DESIGN.md §14): trace generators and JSON
 * round-trips (Workload suite), the multi-stream replay engine with
 * storms and recovery (Replay suite), and the SLO aggregation math
 * (Slo suite).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "runtime/communicator.h"
#include "topology/topology.h"
#include "workload/json.h"
#include "workload/replay.h"
#include "workload/workload.h"

using namespace mscclang;

namespace {

/** A tiny deterministic 2-stream spec for replay tests. */
WorkloadSpec
smallSpec(int ops_per_stream = 3, std::uint64_t bytes = 128 * 1024)
{
    WorkloadSpec spec;
    spec.name = "small";
    for (int s = 0; s < 2; s++) {
        WorkloadStream stream;
        stream.name = s == 0 ? "left" : "right";
        for (int o = 0; o < ops_per_stream; o++) {
            WorkloadOp op;
            op.collective = "allreduce";
            op.bytes = bytes;
            op.issueUs = 200.0 * o;
            stream.ops.push_back(op);
        }
        spec.streams.push_back(std::move(stream));
    }
    return spec;
}

ReplayOptions
fastOptions()
{
    ReplayOptions options;
    options.watchdogNoProgressUs = 150.0;
    options.maxAttempts = 4;
    return options;
}

/** A communicator with the standard plan library for @p spec. */
struct Fixture
{
    Topology topology;
    Communicator comm;

    explicit Fixture(const WorkloadSpec &spec,
                     const std::string &machine = "generic:2:2",
                     std::uint64_t seed = 1)
        : topology(parseTopology(machine)),
          comm(topology,
               [seed] {
                   HealthOptions health;
                   health.seed = seed;
                   return health;
               }())
    {
        registerWorkloadPlans(comm, spec);
    }
};

} // namespace

// ---------------------------------------------------------------------
// Workload suite: specs, generators, storms.
// ---------------------------------------------------------------------

TEST(Workload, GeneratorsAreSeedDeterministic)
{
    std::string a = makeMixedInferenceWorkload(7).toJson();
    std::string b = makeMixedInferenceWorkload(7).toJson();
    EXPECT_EQ(a, b);
    std::string c = makeMixedInferenceWorkload(8).toJson();
    EXPECT_NE(a, c) << "seed must reach the generators";
}

TEST(Workload, JsonRoundTripIsExact)
{
    WorkloadSpec spec = makeMixedInferenceWorkload(3);
    WorkloadSpec parsed = WorkloadSpec::fromJson(spec.toJson());
    EXPECT_EQ(spec.toJson(), parsed.toJson());
    EXPECT_EQ(spec.totalOps(), parsed.totalOps());
}

TEST(Workload, ValidateRejectsOutOfRangeDeps)
{
    WorkloadSpec spec = smallSpec();
    spec.streams[0].ops[1].deps.push_back(OpDep{ 5, 0 });
    EXPECT_THROW(spec.validate(), Error);

    spec = smallSpec();
    spec.streams[0].ops[1].deps.push_back(OpDep{ 1, 99 });
    EXPECT_THROW(spec.validate(), Error);
}

TEST(Workload, ValidateRejectsDependencyCycles)
{
    WorkloadSpec spec = smallSpec(1);
    spec.streams[0].ops[0].deps.push_back(OpDep{ 1, 0 });
    spec.streams[1].ops[0].deps.push_back(OpDep{ 0, 0 });
    EXPECT_THROW(spec.validate(), Error);
}

TEST(Workload, ValidateRejectsZeroByteOps)
{
    WorkloadSpec spec = smallSpec();
    spec.streams[1].ops[0].bytes = 0;
    EXPECT_THROW(spec.validate(), Error);
}

TEST(Workload, MergeRemapsDependencyStreamIndices)
{
    WorkloadSpec pipeline = makePipelineWorkload(2, 2, 64 * 1024, 10.0);
    WorkloadSpec merged = mergeSpecs(
        "merged", { makeDecodeWorkload(2, 64 * 1024, 100.0, 1),
                    pipeline });
    merged.validate();
    ASSERT_EQ(merged.streams.size(), 3u);
    // The pipeline's stage1 -> stage0 deps moved from stream 0 to
    // stream 1 (the decode spec contributed one stream up front).
    const WorkloadOp &op = merged.streams[2].ops[0];
    ASSERT_EQ(op.deps.size(), 1u);
    EXPECT_EQ(op.deps[0].stream, 1);
    EXPECT_EQ(op.deps[0].op, 0);
}

TEST(Workload, MoeSizesAreSkewedAndQuantized)
{
    WorkloadSpec spec = makeMoeWorkload(32, 1 << 20, 100.0, 11);
    std::set<std::uint64_t> sizes;
    for (const WorkloadOp &op : spec.streams[0].ops) {
        EXPECT_GT(op.bytes, 0u);
        EXPECT_EQ(op.bytes % (16 * 1024), 0u)
            << "sizes quantized for chunk geometry";
        sizes.insert(op.bytes);
    }
    EXPECT_GT(sizes.size(), 4u) << "skewed draw, not a constant";
}

TEST(Workload, LinkFlapStormIsPeriodic)
{
    Topology topology = parseTopology("generic:2:2");
    std::vector<ResourceId> targets =
        resourcesMatching(topology, "ib-send[0.1]");
    ASSERT_EQ(targets.size(), 1u);
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 3, 500.0, 200.0, 100.0);
    ASSERT_EQ(storm.events.size(), 3u);
    EXPECT_DOUBLE_EQ(storm.events[0].atUs, 100.0);
    EXPECT_DOUBLE_EQ(storm.events[2].atUs, 1100.0);
    for (const FaultEvent &event : storm.events) {
        EXPECT_EQ(event.kind, FaultKind::Stall);
        EXPECT_DOUBLE_EQ(event.durationUs, 200.0);
    }
}

TEST(Workload, NicFailureTargetsBothDirections)
{
    Topology topology = parseTopology("generic:2:2");
    FaultSchedule failure = makeNicFailure(topology, 1, 50.0);
    ASSERT_EQ(failure.events.size(), 2u);
    std::set<std::string> names;
    for (const FaultEvent &event : failure.events) {
        EXPECT_EQ(event.kind, FaultKind::LinkDown);
        names.insert(topology.resourceName(event.resource));
    }
    EXPECT_TRUE(names.count("ib-send[0.1]"));
    EXPECT_TRUE(names.count("ib-recv[0.1]"));

    Topology single = parseTopology("dgx1");
    EXPECT_THROW(makeNicFailure(single, 0, 1.0), Error);
}

TEST(Workload, MergeSchedulesSortsByTimestamp)
{
    FaultSchedule a;
    a.events.push_back(FaultEvent{ 0, FaultKind::Stall, 300.0, 10.0 });
    FaultSchedule b;
    b.events.push_back(
        FaultEvent{ 1, FaultKind::Degrade, 100.0, 10.0, 0.5 });
    FaultSchedule merged = mergeSchedules({ a, b });
    ASSERT_EQ(merged.events.size(), 2u);
    EXPECT_DOUBLE_EQ(merged.events[0].atUs, 100.0);
    EXPECT_DOUBLE_EQ(merged.events[1].atUs, 300.0);
}

TEST(Workload, JsonParserRejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"a\": }"), Error);
    EXPECT_THROW(parseJson("[1, 2"), Error);
    EXPECT_THROW(parseJson("{} trailing"), Error);
    EXPECT_THROW(parseJson("\"\\u12\""), Error);
    JsonValue ok = parseJson(" {\"k\": [1, 2.5, \"s\\n\", true, "
                             "null]} ");
    EXPECT_EQ(ok.at("k").asArray().size(), 5u);
    EXPECT_DOUBLE_EQ(ok.at("k").asArray()[1].asNumber(), 2.5);
}

// ---------------------------------------------------------------------
// Replay suite: the multi-stream engine over the shared fabric.
// ---------------------------------------------------------------------

TEST(Replay, SingleOpMatchesCommunicatorRun)
{
    WorkloadSpec spec;
    spec.name = "one";
    WorkloadStream stream;
    stream.name = "s";
    WorkloadOp op;
    op.collective = "allreduce";
    op.bytes = 256 * 1024;
    stream.ops.push_back(op);
    spec.streams.push_back(stream);

    Fixture fx(spec);
    ReplayOptions options = fastOptions();
    options.maxTilesPerChunk = 16; // match RunOptions' default
    ReplayResult replay =
        replayWorkload(fx.comm, spec, FaultSchedule{}, options);
    ASSERT_EQ(replay.ops.size(), 1u);
    EXPECT_TRUE(replay.ops[0].completed);

    Fixture solo(spec);
    RunOptions run;
    run.bytes = op.bytes;
    RunResult result = solo.comm.run("allreduce", run);
    EXPECT_DOUBLE_EQ(replay.ops[0].latencyUs, result.timeUs)
        << "an uncontended replayed op costs exactly one run";
    EXPECT_EQ(replay.ops[0].algorithm, result.algorithm);
}

TEST(Replay, ConcurrentStreamsContendForBandwidth)
{
    WorkloadSpec one = smallSpec(1, 1 << 20);
    one.streams.pop_back();
    Fixture solo(one);
    ReplayResult alone =
        replayWorkload(solo.comm, one, FaultSchedule{},
                       fastOptions());

    WorkloadSpec both = smallSpec(1, 1 << 20);
    Fixture fx(both);
    ReplayResult contended =
        replayWorkload(fx.comm, both, FaultSchedule{}, fastOptions());
    ASSERT_EQ(contended.ops.size(), 2u);
    for (const OpRecord &op : contended.ops) {
        EXPECT_TRUE(op.completed);
        EXPECT_GT(op.latencyUs, alone.ops[0].latencyUs)
            << "two concurrent rings share the same links";
    }
}

TEST(Replay, OverlappingOpsBothObserveSharedFault)
{
    // Two concurrent big allreduces; one mild degrade fires while
    // both are in flight. Per-run-timeline observation means BOTH
    // report it — global consumption would hide it from one.
    WorkloadSpec spec = smallSpec(1, 4 << 20);
    Fixture fx(spec);
    Topology probe = parseTopology("generic:2:2");
    std::vector<ResourceId> targets =
        resourcesMatching(probe, "ib-send[0.1]");
    FaultSchedule storm =
        makeDegradeWave(targets, 120.0, 50.0, 0.5);
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, fastOptions());
    ASSERT_EQ(replay.ops.size(), 2u);
    EXPECT_EQ(replay.faultsFired, 1);
    for (const OpRecord &op : replay.ops) {
        EXPECT_TRUE(op.completed);
        EXPECT_EQ(op.faultsSeen, 1)
            << "stream " << op.stream
            << " must observe the shared fault";
    }
}

TEST(Replay, StormEngagesRecovery)
{
    WorkloadSpec spec = smallSpec(4, 512 * 1024);
    Fixture fx(spec);
    std::vector<ResourceId> targets =
        resourcesMatching(fx.topology, "ib-send[0.1]");
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 3, 600.0, 400.0, 80.0);
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, fastOptions());
    EXPECT_GT(replay.faultsFired, 0);
    int retried = 0;
    for (const OpRecord &op : replay.ops)
        retried += op.attempts > 1 ? 1 : 0;
    EXPECT_GT(retried, 0) << "the storm must abort live traffic";
}

TEST(Replay, HealingBeatsBlindRetryOnAvailability)
{
    // The 16-rank machine gives the replanner room to route the ring
    // around the flapping node-boundary NIC; 4 ranks have no
    // alternative ring, so healing and blind retry tie there.
    WorkloadSpec spec = makeMixedInferenceWorkload(1);
    std::vector<ResourceId> targets = resourcesMatching(
        parseTopology("generic:2:8"), "ib-send[0.7]");
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 6, 900.0, 700.0, 200.0);

    ReplayOptions options; // stock watchdog/attempt budget
    Fixture base(spec, "generic:2:8");
    ReplayResult baseline =
        replayWorkload(base.comm, spec, FaultSchedule{}, options);

    Fixture on(spec, "generic:2:8");
    options.selfHealing = true;
    ReplayResult healed = replayWorkload(on.comm, spec, storm, options);
    SloReport healed_report =
        buildSloReport(spec, healed, &baseline, options);

    Fixture off(spec, "generic:2:8");
    options.selfHealing = false;
    ReplayResult blind = replayWorkload(off.comm, spec, storm, options);
    SloReport blind_report =
        buildSloReport(spec, blind, &baseline, options);

    EXPECT_GT(healed_report.fleet.availability,
              blind_report.fleet.availability);
    EXPECT_GT(healed.quarantineChanges, 0);
    EXPECT_EQ(blind.quarantineChanges, 0);
    EXPECT_EQ(blind.replanCompiles, 0);
}

TEST(Replay, RetryBudgetExhaustionHasDistinctReason)
{
    WorkloadSpec spec;
    spec.name = "doomed";
    WorkloadStream stream;
    stream.name = "s";
    WorkloadOp op;
    op.collective = "alltoall"; // no replanner: every pair talks
    op.bytes = 64 * 1024;
    stream.ops.push_back(op);
    spec.streams.push_back(stream);

    Fixture fx(spec);
    FaultSchedule storm = makeNicFailure(fx.topology, 1, 10.0);
    ReplayOptions options = fastOptions();
    options.maxAttempts = 2;
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, options);
    ASSERT_EQ(replay.ops.size(), 1u);
    EXPECT_FALSE(replay.ops[0].completed);
    EXPECT_EQ(replay.ops[0].attempts, 2);
    EXPECT_NE(replay.ops[0].failReason.find("retry budget exhausted"),
              std::string::npos)
        << replay.ops[0].failReason;
}

TEST(Replay, FailedDependencyReleasesDependents)
{
    WorkloadSpec spec;
    spec.name = "chain";
    WorkloadStream doomed;
    doomed.name = "doomed";
    WorkloadOp bad;
    bad.collective = "alltoall";
    bad.bytes = 64 * 1024;
    doomed.ops.push_back(bad);
    WorkloadStream waiter;
    waiter.name = "waiter";
    WorkloadOp good;
    good.collective = "allreduce";
    good.bytes = 64 * 1024;
    good.deps.push_back(OpDep{ 0, 0 });
    waiter.ops.push_back(good);
    spec.streams.push_back(doomed);
    spec.streams.push_back(waiter);

    // 8 ranks: rank 3's NIC dies, but a ring keeping rank 3 between
    // intra-node neighbours still exists, so the alltoall fails while
    // the dependent allreduce must still dispatch (after the
    // failure) and finish on the replanned ring.
    Fixture fx(spec, "generic:2:4");
    FaultSchedule storm = makeNicFailure(fx.topology, 3, 10.0);
    ReplayOptions options = fastOptions();
    options.maxAttempts = 2;
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, options);
    ASSERT_EQ(replay.ops.size(), 2u);
    EXPECT_FALSE(replay.ops[0].completed);
    EXPECT_TRUE(replay.ops[1].completed)
        << replay.ops[1].failReason;
    EXPECT_GE(replay.ops[1].startUs, replay.ops[0].doneUs);
}

TEST(Replay, DataModeRollsBackAbortedInPlaceAttempts)
{
    WorkloadSpec spec = smallSpec(1, 64 * 1024);
    spec.streams.pop_back();
    Fixture fx(spec);
    std::vector<ResourceId> targets =
        resourcesMatching(fx.topology, "ib-send[0.1]");
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 1, 1000.0, 300.0, 20.0);
    ReplayOptions options = fastOptions();
    options.dataMode = true;
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, options);
    ASSERT_EQ(replay.ops.size(), 1u);
    EXPECT_TRUE(replay.ops[0].completed)
        << replay.ops[0].failReason;
    EXPECT_GT(replay.ops[0].attempts, 1);
    EXPECT_TRUE(replay.ops[0].rolledBack)
        << "in-place allreduce retries must roll the store back";
}

TEST(Replay, NoPlanSourceThrowsBeforeTheSimStarts)
{
    WorkloadSpec spec = smallSpec(1);
    Topology topology = parseTopology("generic:2:2");
    Communicator comm(topology);
    EXPECT_THROW(replayWorkload(comm, spec, FaultSchedule{},
                                fastOptions()),
                 RuntimeError);
}

TEST(Replay, FingerprintInvariantAcrossSimThreads)
{
    WorkloadSpec spec = smallSpec(3, 256 * 1024);
    std::vector<ResourceId> targets = resourcesMatching(
        parseTopology("generic:2:2"), "ib-send[0.1]");
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 2, 500.0, 300.0, 60.0);
    std::uint64_t reference = 0;
    for (int threads : { 1, 4 }) {
        Fixture fx(spec);
        ReplayOptions options = fastOptions();
        options.simThreads = threads;
        ReplayResult replay =
            replayWorkload(fx.comm, spec, storm, options);
        if (threads == 1)
            reference = replay.fingerprint();
        else
            EXPECT_EQ(replay.fingerprint(), reference);
    }
}

// ---------------------------------------------------------------------
// Slo suite: aggregation math and report emission.
// ---------------------------------------------------------------------

namespace {

/** A synthetic 1-stream replay with fixed latencies. */
void
syntheticReplay(const std::vector<double> &latencies,
                const std::vector<bool> &completed, WorkloadSpec &spec,
                ReplayResult &result)
{
    spec = WorkloadSpec{};
    spec.name = "synthetic";
    WorkloadStream stream;
    stream.name = "s";
    for (size_t i = 0; i < latencies.size(); i++) {
        WorkloadOp op;
        op.collective = "allreduce";
        op.bytes = 1000;
        stream.ops.push_back(op);

        OpRecord record;
        record.stream = 0;
        record.op = static_cast<int>(i);
        record.collective = "allreduce";
        record.bytes = 1000;
        record.latencyUs = latencies[i];
        record.doneUs = latencies[i];
        record.completed = completed[i];
        result.ops.push_back(record);
        result.makespanUs =
            std::max(result.makespanUs, record.doneUs);
    }
    spec.streams.push_back(std::move(stream));
}

} // namespace

TEST(Slo, PercentilesUseNearestRank)
{
    WorkloadSpec spec;
    ReplayResult result;
    syntheticReplay({ 10, 20, 30, 40, 50, 60, 70, 80, 90, 100 },
                    std::vector<bool>(10, true), spec, result);
    SloReport report =
        buildSloReport(spec, result, nullptr, ReplayOptions{});
    EXPECT_DOUBLE_EQ(report.fleet.p50Us, 50.0);
    EXPECT_DOUBLE_EQ(report.fleet.p99Us, 100.0);
    EXPECT_DOUBLE_EQ(report.fleet.p999Us, 100.0);
    EXPECT_DOUBLE_EQ(report.fleet.meanUs, 55.0);
    EXPECT_DOUBLE_EQ(report.fleet.availability, 1.0);
}

TEST(Slo, AvailabilityComparesAgainstBaseline)
{
    WorkloadSpec spec;
    ReplayResult baseline;
    syntheticReplay({ 10, 10, 10, 10 }, { true, true, true, true },
                    spec, baseline);
    ReplayResult stormed;
    WorkloadSpec same;
    // 25 <= 3x10 passes; 35 misses; a failed op is always a miss.
    syntheticReplay({ 25, 35, 10, 10 }, { true, true, false, true },
                    same, stormed);
    ReplayOptions options;
    options.sloMultiplier = 3.0;
    SloReport report =
        buildSloReport(spec, stormed, &baseline, options);
    EXPECT_DOUBLE_EQ(report.fleet.availability, 0.5);
    EXPECT_EQ(report.fleet.failed, 1);
    EXPECT_EQ(report.fleet.completed, 3);
}

TEST(Slo, BaselineShapeMismatchThrows)
{
    WorkloadSpec spec;
    ReplayResult result;
    syntheticReplay({ 10 }, { true }, spec, result);
    ReplayResult baseline;
    WorkloadSpec other;
    syntheticReplay({ 10, 20 }, { true, true }, other, baseline);
    EXPECT_THROW(
        buildSloReport(spec, result, &baseline, ReplayOptions{}),
        Error);
}

TEST(Slo, ReportEmissionIsByteStable)
{
    WorkloadSpec spec = smallSpec(2, 128 * 1024);
    std::vector<ResourceId> targets = resourcesMatching(
        parseTopology("generic:2:2"), "ib-send[0.1]");
    FaultSchedule storm =
        makeLinkFlapStorm(targets, 2, 400.0, 250.0, 50.0);
    std::string first;
    for (int round = 0; round < 2; round++) {
        Fixture fx(spec);
        ReplayResult replay =
            replayWorkload(fx.comm, spec, storm, fastOptions());
        SloReport report =
            buildSloReport(spec, replay, nullptr, fastOptions());
        if (round == 0)
            first = report.toJson() + report.toCsv();
        else
            EXPECT_EQ(report.toJson() + report.toCsv(), first);
    }
    // Structure: one CSV row per stream plus fleet plus header.
    Fixture fx(spec);
    ReplayResult replay =
        replayWorkload(fx.comm, spec, storm, fastOptions());
    SloReport report =
        buildSloReport(spec, replay, nullptr, fastOptions());
    std::string csv = report.toCsv();
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
              static_cast<long>(2 + spec.streams.size()));
    EXPECT_NE(report.toJson().find("\"p99_us\""), std::string::npos);
}

TEST(Slo, FingerprintMatchesJsonBytes)
{
    WorkloadSpec spec;
    ReplayResult result;
    syntheticReplay({ 10, 20 }, { true, true }, spec, result);
    SloReport a =
        buildSloReport(spec, result, nullptr, ReplayOptions{});
    SloReport b =
        buildSloReport(spec, result, nullptr, ReplayOptions{});
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.fleet.p50Us += 1.0;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}
