/**
 * @file
 * Bit-exact determinism of the simulator. Simulated results — the
 * ExecStats fingerprint, the trace file content, and data-mode
 * buffer contents — must be identical on every run of the same
 * program: hot-path work (incremental max-min rates, pooled events,
 * dense interpreter plans, parallel tuner sweeps) is only allowed to
 * move wall-clock time, never simulated time. EXPERIMENTS.md states
 * this contract; these tests pin it across topologies, collectives,
 * and both execution modes.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/classic.h"
#include "collectives/collectives.h"
#include "compiler/compiler.h"
#include "runtime/interpreter.h"
#include "runtime/tuner.h"
#include "topology/topology.h"

namespace mscclang {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Runs @p ir once in timing mode, tracing to @p trace_path. */
ExecStats
runTimed(const Topology &topo, const IrProgram &ir,
         std::uint64_t bytes, const std::string &trace_path)
{
    ExecOptions exec;
    exec.bytesPerRank = bytes;
    exec.maxTilesPerChunk = 16;
    exec.launchOverheadUs = topo.params().kernelLaunchUs;
    exec.traceFile = trace_path;
    return runIr(topo, ir, exec);
}

/**
 * Runs twice from identical fresh state and requires the stats and
 * the trace files to be bitwise identical (== on doubles, byte-equal
 * trace content).
 */
void
expectBitIdentical(const Topology &topo, const IrProgram &ir,
                   std::uint64_t bytes)
{
    std::string path_a =
        testing::TempDir() + "mscclang_determinism_a.json";
    std::string path_b =
        testing::TempDir() + "mscclang_determinism_b.json";
    ExecStats a = runTimed(topo, ir, bytes, path_a);
    ExecStats b = runTimed(topo, ir, bytes, path_b);
    EXPECT_EQ(a.endNs, b.endNs);
    EXPECT_EQ(a.startNs, b.startNs);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.wireBytes, b.wireBytes); // exact, not NEAR
    std::string trace_a = slurp(path_a);
    std::string trace_b = slurp(path_b);
    EXPECT_FALSE(trace_a.empty());
    EXPECT_EQ(trace_a, trace_b);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Determinism, RingAllReduceSingleNode)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    expectBitIdentical(topo, ir, 1 << 20);
}

TEST(Determinism, RingAllReduceTwoNodesCrossesIb)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 4;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 4, cfg)).ir;
    expectBitIdentical(topo, ir, 4 << 20);
}

TEST(Determinism, DoubleBinaryTreeDgx2)
{
    Topology topo = makeDgx2(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL;
    cfg.instances = 2;
    IrProgram ir =
        compileProgram(*makeDoubleBinaryTreeAllReduce(16, cfg)).ir;
    expectBitIdentical(topo, ir, 256 << 10);
}

TEST(Determinism, HierarchicalAllReduceDgx1)
{
    Topology topo = makeDgx1();
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir =
        compileProgram(*makeRabenseifnerAllReduce(8, cfg)).ir;
    expectBitIdentical(topo, ir, 1 << 20);
}

TEST(Determinism, DataModeStatsAndBuffersAreBitIdentical)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    const std::uint64_t bytes = 256 << 10;

    auto run_once = [&](DataStore &store) {
        store.configure(ir, bytes);
        for (int r = 0; r < 8; r++) {
            std::vector<float> &in = store.input(r);
            for (size_t i = 0; i < in.size(); i++)
                in[i] = static_cast<float>((r * 131 + i) % 97);
        }
        ExecOptions exec;
        exec.dataMode = true;
        exec.bytesPerRank = bytes;
        exec.maxTilesPerChunk = 16;
        exec.launchOverheadUs = topo.params().kernelLaunchUs;
        return runIr(topo, ir, exec, &store);
    };

    DataStore store_a, store_b;
    ExecStats a = run_once(store_a);
    ExecStats b = run_once(store_b);
    EXPECT_EQ(a.endNs, b.endNs);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    for (int r = 0; r < 8; r++) {
        // Element-exact: reductions must run in the same order too.
        EXPECT_EQ(store_a.output(r), store_b.output(r)) << "rank " << r;
    }
}

TEST(Determinism, TimingModeMatchesDataModeTimings)
{
    // The two modes share one event schedule; moving real floats must
    // not perturb simulated time.
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    const std::uint64_t bytes = 64 << 10;

    ExecOptions timing;
    timing.bytesPerRank = bytes;
    timing.maxTilesPerChunk = 16;
    timing.launchOverheadUs = topo.params().kernelLaunchUs;
    ExecStats t = runIr(topo, ir, timing);

    DataStore store;
    store.configure(ir, bytes);
    ExecOptions data = timing;
    data.dataMode = true;
    ExecStats d = runIr(topo, ir, data, &store);

    EXPECT_EQ(t.endNs, d.endNs);
    EXPECT_EQ(t.messages, d.messages);
    EXPECT_EQ(t.wireBytes, d.wireBytes);
}

TEST(Determinism, TunerWindowsIndependentOfThreadCount)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(16, 2, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(16, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeDoubleBinaryTreeAllReduce(16, cfg)).ir);

    TuneOptions tune;
    tune.fromBytes = 1 << 12;
    tune.toBytes = 1 << 20;

    tune.threads = 1;
    std::vector<TunedWindow> serial =
        tuneWindows(topo, candidates, tune);
    tune.threads = 4;
    std::vector<TunedWindow> parallel =
        tuneWindows(topo, candidates, tune);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].minBytes, parallel[i].minBytes);
        EXPECT_EQ(serial[i].maxBytes, parallel[i].maxBytes);
        EXPECT_EQ(serial[i].candidate, parallel[i].candidate);
        EXPECT_EQ(serial[i].timeUs, parallel[i].timeUs); // exact
    }
}

TEST(Determinism, TunerMemoizesDuplicateCandidates)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(8, 2, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(8, cfg)).ir);
    // The same ring again under a different name: structurally equal,
    // so it shares the first candidate's simulations and — by the
    // strict-< winner rule — can never displace it.
    candidates.push_back(candidates[0]);
    candidates.back().name = "ring-again";

    TuneOptions tune;
    tune.fromBytes = 1 << 12;
    tune.toBytes = 1 << 18;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, tune);
    for (const TunedWindow &w : windows)
        EXPECT_NE(w.candidate, 2) << "duplicate displaced original";
}

} // namespace
} // namespace mscclang
