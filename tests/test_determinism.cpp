/**
 * @file
 * Bit-exact determinism of the simulator AND the compiler. Simulated
 * results — the ExecStats fingerprint, the trace file content, and
 * data-mode buffer contents — must be identical on every run of the
 * same program: hot-path work (incremental max-min rates, pooled
 * events, dense interpreter plans, parallel tuner sweeps) is only
 * allowed to move wall-clock time, never simulated time. The same
 * contract binds the compiler: data-structure and verifier overhauls
 * may only move wall-clock time, never the emitted IR (instruction
 * order, channel and thread-block assignment) or a verifier verdict,
 * pinned here by golden FNV-1a hashes of the IR XML measured at the
 * pre-overhaul compiler. EXPERIMENTS.md states both contracts.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/classic.h"
#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/verifier.h"
#include "runtime/communicator.h"
#include "runtime/interpreter.h"
#include "runtime/tuner.h"
#include "topology/topology.h"
#include "workload/replay.h"
#include "workload/workload.h"

namespace mscclang {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Runs @p ir once in timing mode, tracing to @p trace_path. */
ExecStats
runTimed(const Topology &topo, const IrProgram &ir,
         std::uint64_t bytes, const std::string &trace_path)
{
    ExecOptions exec;
    exec.bytesPerRank = bytes;
    exec.maxTilesPerChunk = 16;
    exec.launchOverheadUs = topo.params().kernelLaunchUs;
    exec.traceFile = trace_path;
    return runIr(topo, ir, exec);
}

/**
 * Runs twice from identical fresh state and requires the stats and
 * the trace files to be bitwise identical (== on doubles, byte-equal
 * trace content).
 */
void
expectBitIdentical(const Topology &topo, const IrProgram &ir,
                   std::uint64_t bytes)
{
    std::string path_a =
        testing::TempDir() + "mscclang_determinism_a.json";
    std::string path_b =
        testing::TempDir() + "mscclang_determinism_b.json";
    ExecStats a = runTimed(topo, ir, bytes, path_a);
    ExecStats b = runTimed(topo, ir, bytes, path_b);
    EXPECT_EQ(a.endNs, b.endNs);
    EXPECT_EQ(a.startNs, b.startNs);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.wireBytes, b.wireBytes); // exact, not NEAR
    std::string trace_a = slurp(path_a);
    std::string trace_b = slurp(path_b);
    EXPECT_FALSE(trace_a.empty());
    EXPECT_EQ(trace_a, trace_b);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Determinism, RingAllReduceSingleNode)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    expectBitIdentical(topo, ir, 1 << 20);
}

TEST(Determinism, RingAllReduceTwoNodesCrossesIb)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 4;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 4, cfg)).ir;
    expectBitIdentical(topo, ir, 4 << 20);
}

TEST(Determinism, DoubleBinaryTreeDgx2)
{
    Topology topo = makeDgx2(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL;
    cfg.instances = 2;
    IrProgram ir =
        compileProgram(*makeDoubleBinaryTreeAllReduce(16, cfg)).ir;
    expectBitIdentical(topo, ir, 256 << 10);
}

TEST(Determinism, HierarchicalAllReduceDgx1)
{
    Topology topo = makeDgx1();
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir =
        compileProgram(*makeRabenseifnerAllReduce(8, cfg)).ir;
    expectBitIdentical(topo, ir, 1 << 20);
}

TEST(Determinism, DataModeStatsAndBuffersAreBitIdentical)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    const std::uint64_t bytes = 256 << 10;

    auto run_once = [&](DataStore &store) {
        store.configure(ir, bytes);
        for (int r = 0; r < 8; r++) {
            std::vector<float> &in = store.input(r);
            for (size_t i = 0; i < in.size(); i++)
                in[i] = static_cast<float>((r * 131 + i) % 97);
        }
        ExecOptions exec;
        exec.dataMode = true;
        exec.bytesPerRank = bytes;
        exec.maxTilesPerChunk = 16;
        exec.launchOverheadUs = topo.params().kernelLaunchUs;
        return runIr(topo, ir, exec, &store);
    };

    DataStore store_a, store_b;
    ExecStats a = run_once(store_a);
    ExecStats b = run_once(store_b);
    EXPECT_EQ(a.endNs, b.endNs);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.wireBytes, b.wireBytes);
    for (int r = 0; r < 8; r++) {
        // Element-exact: reductions must run in the same order too.
        EXPECT_EQ(store_a.output(r), store_b.output(r)) << "rank " << r;
    }
}

TEST(Determinism, TimingModeMatchesDataModeTimings)
{
    // The two modes share one event schedule; moving real floats must
    // not perturb simulated time.
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    const std::uint64_t bytes = 64 << 10;

    ExecOptions timing;
    timing.bytesPerRank = bytes;
    timing.maxTilesPerChunk = 16;
    timing.launchOverheadUs = topo.params().kernelLaunchUs;
    ExecStats t = runIr(topo, ir, timing);

    DataStore store;
    store.configure(ir, bytes);
    ExecOptions data = timing;
    data.dataMode = true;
    ExecStats d = runIr(topo, ir, data, &store);

    EXPECT_EQ(t.endNs, d.endNs);
    EXPECT_EQ(t.messages, d.messages);
    EXPECT_EQ(t.wireBytes, d.wireBytes);
}

/** One timing-mode run with the given flow-network thread count. */
ExecStats
runWithSimThreads(const Topology &topo, const IrProgram &ir,
                  std::uint64_t bytes, int threads,
                  const std::string &trace_path = std::string())
{
    ExecOptions exec;
    exec.bytesPerRank = bytes;
    exec.maxTilesPerChunk = 16;
    exec.launchOverheadUs = topo.params().kernelLaunchUs;
    exec.simThreads = threads;
    exec.traceFile = trace_path;
    return runIr(topo, ir, exec);
}

/**
 * The parallel-simulation contract (DESIGN.md §11): the simulated
 * fingerprint is bit-identical at every thread count. Runs at one
 * thread as the reference, then at {2, 4, 8}; any divergence means a
 * shard batch leaked ordering into simulated time.
 */
void
expectSimThreadInvariant(const Topology &topo, const IrProgram &ir,
                         std::uint64_t bytes)
{
    ExecStats ref = runWithSimThreads(topo, ir, bytes, 1);
    for (int threads : { 2, 4, 8 }) {
        ExecStats got = runWithSimThreads(topo, ir, bytes, threads);
        EXPECT_EQ(ref.endNs, got.endNs) << "threads=" << threads;
        EXPECT_EQ(ref.startNs, got.startNs) << "threads=" << threads;
        EXPECT_EQ(ref.messages, got.messages)
            << "threads=" << threads;
        EXPECT_EQ(ref.wireBytes, got.wireBytes) // exact, not NEAR
            << "threads=" << threads;
    }
}

TEST(Determinism, SimThreadsInvariantAllReduce16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 4;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 4, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 1 << 20);
}

TEST(Determinism, SimThreadsInvariantAllGather16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllGather(16, 2, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, SimThreadsInvariantAllToAll16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeTwoStepAllToAll(2, 8, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, SimThreadsInvariantAllReduce64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(64, 2, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, SimThreadsInvariantAllGather64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeRingAllGather(64, 2, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 128 << 10);
}

TEST(Determinism, SimThreadsInvariantAllToAll64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeTwoStepAllToAll(8, 8, cfg)).ir;
    expectSimThreadInvariant(topo, ir, 64 << 10);
}

TEST(Determinism, SimThreadsInvariantTraceContent)
{
    // Stronger than the stats fingerprint: the full instruction
    // timeline — every slice's begin and end timestamp — must be
    // byte-identical across thread counts.
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 2, cfg)).ir;
    std::string path_1 =
        testing::TempDir() + "mscclang_simthreads_1.json";
    std::string path_8 =
        testing::TempDir() + "mscclang_simthreads_8.json";
    ExecStats a = runWithSimThreads(topo, ir, 1 << 20, 1, path_1);
    ExecStats b = runWithSimThreads(topo, ir, 1 << 20, 8, path_8);
    EXPECT_EQ(a.endNs, b.endNs);
    std::string trace_1 = slurp(path_1);
    std::string trace_8 = slurp(path_8);
    EXPECT_FALSE(trace_1.empty());
    EXPECT_EQ(trace_1, trace_8);
    std::remove(path_1.c_str());
    std::remove(path_8.c_str());
}

TEST(Determinism, SimThreadsInvariantWithActiveFaults)
{
    // Fault activation must fire at the same simulated timestamp no
    // matter how the flow network is sharded or how many workers
    // drain a batch: the schedule rides the serial event queue, and
    // capacity mutation settles only the owning shard.
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 2, cfg)).ir;
    const std::uint64_t bytes = 1 << 20;

    double healthy_us =
        runWithSimThreads(topo, ir, bytes, 1).durationUs();
    const Route &route = topo.route(0, 1);
    ASSERT_FALSE(route.resources.empty());
    FaultEvent degrade;
    degrade.resource = route.resources.front();
    degrade.kind = FaultKind::Degrade;
    degrade.atUs = healthy_us * 0.3;
    degrade.durationUs = healthy_us * 0.4;
    degrade.factor = 0.05;
    topo.setFaultSchedule(FaultSchedule{ { degrade } });

    ExecStats ref = runWithSimThreads(topo, ir, bytes, 1);
    EXPECT_FALSE(ref.aborted);
    EXPECT_EQ(ref.faultsSeen, 1);
    EXPECT_GT(ref.durationUs(), healthy_us); // the fault bit
    for (int threads : { 2, 4, 8 }) {
        ExecStats got = runWithSimThreads(topo, ir, bytes, threads);
        EXPECT_EQ(ref.endNs, got.endNs) << "threads=" << threads;
        EXPECT_EQ(ref.messages, got.messages)
            << "threads=" << threads;
        EXPECT_EQ(ref.wireBytes, got.wireBytes)
            << "threads=" << threads;
        EXPECT_EQ(ref.firedFaults, got.firedFaults)
            << "threads=" << threads;
        EXPECT_EQ(ref.faultsSeen, got.faultsSeen)
            << "threads=" << threads;
    }
}

/** One timing-mode run on the parallel interpreter engine. */
ExecStats
runParallelInterp(const Topology &topo, const IrProgram &ir,
                  std::uint64_t bytes, int threads,
                  const std::string &trace_path = std::string())
{
    ExecOptions exec;
    exec.bytesPerRank = bytes;
    exec.maxTilesPerChunk = 16;
    exec.launchOverheadUs = topo.params().kernelLaunchUs;
    exec.simThreads = threads;
    exec.parallelInterp = true;
    exec.traceFile = trace_path;
    return runIr(topo, ir, exec);
}

/**
 * The parallel-interpreter contract (DESIGN.md §13): with
 * parallelInterp on, the fingerprint is bit-identical at every
 * simThreads count — the rank-batch merge applies cross-rank effects
 * in deterministic order, so worker count can only move wall-clock
 * time. Against the serial engine, timestamps and message counts
 * agree exactly; wireBytes only up to floating-point summation order
 * (per-rank partial sums fold rank-by-rank instead of accumulating
 * in global event order).
 */
void
expectParallelInterpInvariant(const Topology &topo,
                              const IrProgram &ir,
                              std::uint64_t bytes)
{
    ExecStats serial = runWithSimThreads(topo, ir, bytes, 1);
    ExecStats ref = runParallelInterp(topo, ir, bytes, 1);
    EXPECT_EQ(serial.endNs, ref.endNs) << "engine divergence";
    EXPECT_EQ(serial.startNs, ref.startNs);
    EXPECT_EQ(serial.messages, ref.messages);
    EXPECT_NEAR(serial.wireBytes, ref.wireBytes,
                1e-6 * serial.wireBytes + 1e-3);
    for (int threads : { 2, 4, 8 }) {
        ExecStats got = runParallelInterp(topo, ir, bytes, threads);
        EXPECT_EQ(ref.endNs, got.endNs) << "threads=" << threads;
        EXPECT_EQ(ref.startNs, got.startNs) << "threads=" << threads;
        EXPECT_EQ(ref.messages, got.messages)
            << "threads=" << threads;
        EXPECT_EQ(ref.wireBytes, got.wireBytes) // exact, not NEAR
            << "threads=" << threads;
    }
}

TEST(Determinism, ParallelInterpInvariantAllReduce16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 4;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 4, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 1 << 20);
}

TEST(Determinism, ParallelInterpInvariantAllGather16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllGather(16, 2, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, ParallelInterpInvariantAllToAll16)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeTwoStepAllToAll(2, 8, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, ParallelInterpInvariantAllReduce64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(64, 2, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 256 << 10);
}

TEST(Determinism, ParallelInterpInvariantAllGather64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeRingAllGather(64, 2, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 128 << 10);
}

TEST(Determinism, ParallelInterpInvariantAllToAll64)
{
    Topology topo = makeNdv4(8);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 1;
    IrProgram ir = compileProgram(*makeTwoStepAllToAll(8, 8, cfg)).ir;
    expectParallelInterpInvariant(topo, ir, 64 << 10);
}

TEST(Determinism, ParallelInterpTraceContentMatchesSerialEngine)
{
    // The full instruction timeline is engine-independent: every
    // slice's begin/end timestamp is byte-identical between the
    // serial engine and the parallel engine at any thread count
    // (writeTrace's canonical sort erases append-order differences).
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::LL128;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 2, cfg)).ir;
    std::string path_s =
        testing::TempDir() + "mscclang_pinterp_serial.json";
    std::string path_1 =
        testing::TempDir() + "mscclang_pinterp_1.json";
    std::string path_8 =
        testing::TempDir() + "mscclang_pinterp_8.json";
    runWithSimThreads(topo, ir, 1 << 20, 1, path_s);
    runParallelInterp(topo, ir, 1 << 20, 1, path_1);
    runParallelInterp(topo, ir, 1 << 20, 8, path_8);
    std::string trace_s = slurp(path_s);
    std::string trace_1 = slurp(path_1);
    std::string trace_8 = slurp(path_8);
    EXPECT_FALSE(trace_s.empty());
    EXPECT_EQ(trace_s, trace_1);
    EXPECT_EQ(trace_1, trace_8);
    std::remove(path_s.c_str());
    std::remove(path_1.c_str());
    std::remove(path_8.c_str());
}

TEST(Determinism, ParallelInterpInvariantWithActiveFaults)
{
    // Fired-fault sets and post-fault timings survive the engine
    // swap and every worker count.
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(16, 2, cfg)).ir;
    const std::uint64_t bytes = 1 << 20;

    double healthy_us =
        runWithSimThreads(topo, ir, bytes, 1).durationUs();
    const Route &route = topo.route(0, 1);
    ASSERT_FALSE(route.resources.empty());
    FaultEvent degrade;
    degrade.resource = route.resources.front();
    degrade.kind = FaultKind::Degrade;
    degrade.atUs = healthy_us * 0.3;
    degrade.durationUs = healthy_us * 0.4;
    degrade.factor = 0.05;
    topo.setFaultSchedule(FaultSchedule{ { degrade } });

    ExecStats serial = runWithSimThreads(topo, ir, bytes, 1);
    ExecStats ref = runParallelInterp(topo, ir, bytes, 1);
    EXPECT_FALSE(ref.aborted);
    EXPECT_EQ(serial.endNs, ref.endNs);
    EXPECT_EQ(serial.firedFaults, ref.firedFaults);
    EXPECT_EQ(serial.faultsSeen, ref.faultsSeen);
    for (int threads : { 2, 4, 8 }) {
        ExecStats got = runParallelInterp(topo, ir, bytes, threads);
        EXPECT_EQ(ref.endNs, got.endNs) << "threads=" << threads;
        EXPECT_EQ(ref.messages, got.messages)
            << "threads=" << threads;
        EXPECT_EQ(ref.wireBytes, got.wireBytes)
            << "threads=" << threads;
        EXPECT_EQ(ref.firedFaults, got.firedFaults)
            << "threads=" << threads;
        EXPECT_EQ(ref.faultsSeen, got.faultsSeen)
            << "threads=" << threads;
    }
}

TEST(Determinism, ParallelInterpDataModeMatchesSerialEngine)
{
    // Real float data: each rank's reductions execute in the same
    // per-rank order under both engines, so output buffers are
    // element-exact — not just close.
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    IrProgram ir = compileProgram(*makeRingAllReduce(8, 2, cfg)).ir;
    const std::uint64_t bytes = 256 << 10;

    auto run_once = [&](DataStore &store, bool parallel, int threads) {
        store.configure(ir, bytes);
        for (int r = 0; r < 8; r++) {
            std::vector<float> &in = store.input(r);
            for (size_t i = 0; i < in.size(); i++)
                in[i] = static_cast<float>((r * 131 + i) % 97);
        }
        ExecOptions exec;
        exec.dataMode = true;
        exec.bytesPerRank = bytes;
        exec.maxTilesPerChunk = 16;
        exec.launchOverheadUs = topo.params().kernelLaunchUs;
        exec.simThreads = threads;
        exec.parallelInterp = parallel;
        return runIr(topo, ir, exec, &store);
    };

    DataStore store_s, store_1, store_4;
    ExecStats s = run_once(store_s, false, 1);
    ExecStats p1 = run_once(store_1, true, 1);
    ExecStats p4 = run_once(store_4, true, 4);
    EXPECT_EQ(s.endNs, p1.endNs);
    EXPECT_EQ(p1.endNs, p4.endNs);
    EXPECT_EQ(s.messages, p1.messages);
    for (int r = 0; r < 8; r++) {
        EXPECT_EQ(store_s.output(r), store_1.output(r)) << "rank " << r;
        EXPECT_EQ(store_1.output(r), store_4.output(r)) << "rank " << r;
    }
}

TEST(Determinism, TunerWindowsIndependentOfThreadCount)
{
    Topology topo = makeNdv4(2);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(16, 2, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(16, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeDoubleBinaryTreeAllReduce(16, cfg)).ir);

    TuneOptions tune;
    tune.fromBytes = 1 << 12;
    tune.toBytes = 1 << 20;

    tune.threads = 1;
    std::vector<TunedWindow> serial =
        tuneWindows(topo, candidates, tune);
    tune.threads = 4;
    std::vector<TunedWindow> parallel =
        tuneWindows(topo, candidates, tune);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].minBytes, parallel[i].minBytes);
        EXPECT_EQ(serial[i].maxBytes, parallel[i].maxBytes);
        EXPECT_EQ(serial[i].candidate, parallel[i].candidate);
        EXPECT_EQ(serial[i].timeUs, parallel[i].timeUs); // exact
    }
}

TEST(Determinism, TunerMemoizesDuplicateCandidates)
{
    Topology topo = makeNdv4(1);
    AlgoConfig cfg;
    cfg.protocol = Protocol::Simple;
    cfg.instances = 2;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(8, 2, cfg)).ir);
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(8, cfg)).ir);
    // The same ring again under a different name: structurally equal,
    // so it shares the first candidate's simulations and — by the
    // strict-< winner rule — can never displace it.
    candidates.push_back(candidates[0]);
    candidates.back().name = "ring-again";

    TuneOptions tune;
    tune.fromBytes = 1 << 12;
    tune.toBytes = 1 << 18;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, tune);
    for (const TunedWindow &w : windows)
        EXPECT_NE(w.candidate, 2) << "duplicate displaced original";
}

// ------------------------------------------------------------------
// Compiler determinism: the IR emitted for a fixed program is part of
// the repo's contract. The hashes below were measured at the
// pre-overhaul compiler; any divergence means instruction order,
// channel assignment, or thread-block assignment changed.

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

struct GoldenProgram
{
    const char *name;
    std::uint64_t xmlHash;
    std::function<std::string()> compileXml;
};

std::vector<GoldenProgram>
goldenPrograms()
{
    AlgoConfig i2;
    i2.instances = 2;
    AlgoConfig i4;
    i4.instances = 4;
    i4.protocol = Protocol::LL128;
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    ll.instances = 2;
    AlgoConfig plain;
    auto xml = [](const Program &p, const CompileOptions &copts = {}) {
        return compileProgram(p, copts).ir.toXml();
    };
    return {
        { "ring_allreduce_8x2_i2", 0x75cca9cb1c069012ull,
          [=] { return xml(*makeRingAllReduce(8, 2, i2)); } },
        { "ring_allreduce_16x4_i4_ll128", 0x38abad495ed5569aull,
          [=] { return xml(*makeRingAllReduce(16, 4, i4)); } },
        { "ring_allreduce_oop_8x2", 0x1f2f8a7279bbe52cull,
          [=] { return xml(*makeRingAllReduceOutOfPlace(8, 2, i2)); } },
        { "allpairs_8_ll", 0x8f00059d8a9ebce5ull,
          [=] { return xml(*makeAllPairsAllReduce(8, ll)); } },
        { "hierarchical_2x4_i2", 0xf050070cec36d9b9ull,
          [=] {
              return xml(*makeHierarchicalAllReduce(2, 4, 2, plain));
          } },
        // Multi-node scaling goldens: the hierarchical factory at
        // 16/64/256 ranks (8-GPU nodes) plus an explicit hierarchy
        // split, pinning the generalized group loops to the exact IR
        // the whole-node implementation emitted.
        { "hierarchical_2x8", 0xb575bde688fd43aaull,
          [=] {
              return xml(*makeHierarchicalAllReduce(2, 8, 1, plain));
          } },
        { "hierarchical_8x8", 0x4f3d555957bfb307ull,
          [=] {
              return xml(*makeHierarchicalAllReduce(8, 8, 1, plain));
          } },
        { "hierarchical_32x8", 0x39147a7e3b401852ull,
          [=] {
              return xml(*makeHierarchicalAllReduce(32, 8, 1, plain));
          } },
        { "hierarchical_2x4_h2", 0x7d3a2ab38d94a56cull,
          [=] {
              AlgoConfig split;
              split.hierSplit = 2;
              return xml(*makeHierarchicalAllReduce(2, 4, 2, split));
          } },
        { "twostep_alltoall_2x4", 0x45fd89fa179dffa7ull,
          [=] { return xml(*makeTwoStepAllToAll(2, 4, plain)); } },
        { "naive_alltoall_8", 0xf3352f705b2aeb2eull,
          [=] { return xml(*makeNaiveAllToAll(8, plain)); } },
        { "alltonext_2x4", 0xc05b83444d2becf6ull,
          [=] { return xml(*makeAllToNext(2, 4, plain)); } },
        { "naive_alltonext_2x4", 0x705dbf06d0bb286aull,
          [=] { return xml(*makeNaiveAllToNext(2, 4, plain)); } },
        { "ring_allgather_8x2_i2", 0xa2b4b8c1d774e602ull,
          [=] { return xml(*makeRingAllGather(8, 2, i2)); } },
        { "dbt_allreduce_16_ll", 0x2ad83adb6e380f8full,
          [=] { return xml(*makeDoubleBinaryTreeAllReduce(16, ll)); } },
        { "rabenseifner_8", 0xffa1b3a08739c09eull,
          [=] { return xml(*makeRabenseifnerAllReduce(8, plain)); } },
        { "sccl122_allgather_dgx1", 0x3515935a2aea16adull,
          [=] {
              Topology dgx1 = makeDgx1();
              CompileOptions copts;
              copts.topology = &dgx1;
              return xml(*makeSccl122AllGather(dgx1, plain), copts);
          } },
    };
}

TEST(Determinism, CompiledIrMatchesGoldenHashes)
{
    for (const GoldenProgram &gold : goldenPrograms()) {
        SCOPED_TRACE(gold.name);
        EXPECT_EQ(fnv1a(gold.compileXml()), gold.xmlHash);
    }
}

TEST(Determinism, CompilingTwiceYieldsIdenticalIr)
{
    // Byte-equal XML means identical instruction order, channel, and
    // thread-block assignment — stronger than hash equality.
    for (const GoldenProgram &gold : goldenPrograms()) {
        SCOPED_TRACE(gold.name);
        EXPECT_EQ(gold.compileXml(), gold.compileXml());
    }
}

TEST(Determinism, ConcurrentCompilesYieldIdenticalIr)
{
    // The compiler owns no global mutable state; racing full compiles
    // of different programs must still reproduce every golden hash.
    std::vector<GoldenProgram> golds = goldenPrograms();
    std::vector<std::uint64_t> hashes(golds.size(), 0);
    std::vector<std::thread> pool;
    for (size_t i = 0; i < golds.size(); i++) {
        pool.emplace_back([&, i] {
            hashes[i] = fnv1a(golds[i].compileXml());
        });
    }
    for (std::thread &t : pool)
        t.join();
    for (size_t i = 0; i < golds.size(); i++) {
        SCOPED_TRACE(golds[i].name);
        EXPECT_EQ(hashes[i], golds[i].xmlHash);
    }
}

/** Two thread blocks writing output chunk 0 of rank 0, unordered. */
IrProgram
racyWriteWriteIr()
{
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 2;
    ir.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction copy;
        copy.op = IrOp::Copy;
        copy.srcBuf = BufferKind::Input;
        copy.srcOff = t;
        copy.dstBuf = BufferKind::Output;
        copy.dstOff = 0;
        tb.steps.push_back(copy);
        ir.gpus[0].threadBlocks.push_back(tb);
    }
    return ir;
}

/** A scratch write racing a scratch read across thread blocks. */
IrProgram
racyReadWriteIr()
{
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 1;
    ir.gpus[0].outputChunks = 1;
    ir.gpus[0].scratchChunks = 1;
    IrThreadBlock tb0;
    tb0.id = 0;
    IrInstruction w;
    w.op = IrOp::Copy;
    w.srcBuf = BufferKind::Input;
    w.dstBuf = BufferKind::Scratch;
    tb0.steps.push_back(w);
    ir.gpus[0].threadBlocks.push_back(tb0);
    IrThreadBlock tb1;
    tb1.id = 1;
    IrInstruction r;
    r.op = IrOp::Copy;
    r.srcBuf = BufferKind::Scratch;
    r.dstBuf = BufferKind::Output;
    tb1.steps.push_back(r);
    ir.gpus[0].threadBlocks.push_back(tb1);
    return ir;
}

std::string
raceVerdict(const IrProgram &ir, int threads)
{
    try {
        verifyRaceFree(ir, threads);
    } catch (const VerificationError &e) {
        return e.what();
    }
    return "";
}

TEST(Determinism, RaceVerdictsMatchGoldenMessages)
{
    // Exact messages measured at the pre-overhaul whole-graph
    // analysis; the partitioned parallel verifier must reproduce the
    // same first error.
    EXPECT_EQ(raceVerdict(racyWriteWriteIr(), 0),
              "data race: rank 0 tb 0 step 0 and tb 1 step 0 "
              "access o[0] unordered");
    EXPECT_EQ(raceVerdict(racyReadWriteIr(), 0),
              "data race: rank 0 tb 0 step 0 and tb 1 step 0 "
              "access s[0] unordered");
}

TEST(Determinism, RaceVerdictsIndependentOfThreadCount)
{
    std::vector<IrProgram> cases = { racyWriteWriteIr(),
                                     racyReadWriteIr() };
    // A clean program too: every golden collective passes the race
    // check at any worker count.
    AlgoConfig i2;
    i2.instances = 2;
    cases.push_back(compileProgram(*makeRingAllReduce(8, 2, i2)).ir);
    for (size_t i = 0; i < cases.size(); i++) {
        SCOPED_TRACE(i);
        std::string serial = raceVerdict(cases[i], 1);
        for (int threads : { 2, 4, 8 })
            EXPECT_EQ(raceVerdict(cases[i], threads), serial);
    }
}

TEST(Determinism, SeededWorkloadSpecsAreByteIdentical)
{
    // The same contract extends to the workload layer: a seeded
    // generator is a pure function of its arguments, pinned at the
    // JSON byte level so traces can be diffed and replayed exactly.
    for (std::uint64_t seed : { 1ULL, 7ULL, 0xabcdefULL }) {
        SCOPED_TRACE(seed);
        EXPECT_EQ(makeMixedInferenceWorkload(seed).toJson(),
                  makeMixedInferenceWorkload(seed).toJson());
        EXPECT_EQ(makeDecodeWorkload(16, 1 << 20, 250.0, seed)
                      .toJson(),
                  makeDecodeWorkload(16, 1 << 20, 250.0, seed)
                      .toJson());
        EXPECT_EQ(makeMoeWorkload(16, 1 << 20, 300.0, seed).toJson(),
                  makeMoeWorkload(16, 1 << 20, 300.0, seed).toJson());
        EXPECT_EQ(
            makeBurstyWorkload(3, 4, 1 << 19, 800.0, seed).toJson(),
            makeBurstyWorkload(3, 4, 1 << 19, 800.0, seed).toJson());
    }
}

TEST(Determinism, WorkloadReplayInvariantAcrossEnginesAndThreads)
{
    // A stormed multi-stream replay — retries, backoff jitter,
    // quarantine churn and all — must produce the identical op-level
    // fingerprint at every simThreads count and on both interpreter
    // engines. This pins the whole recovery stack, not just one
    // kernel's timing.
    Topology topo = parseTopology("generic:2:4");
    WorkloadSpec spec = mergeSpecs(
        "det", { makeDecodeWorkload(4, 512 * 1024, 300.0, 3),
                 makeMoeWorkload(3, 1 << 20, 500.0, 3) });
    FaultSchedule storm = makeLinkFlapStorm(
        resourcesMatching(topo, "ib-send[0.3]"), 3, 700.0, 500.0,
        150.0);

    std::uint64_t reference = 0;
    bool have_reference = false;
    for (bool parallel_interp : { false, true }) {
        for (int threads : { 1, 2, 4, 8 }) {
            SCOPED_TRACE(parallel_interp ? "parallel" : "serial");
            SCOPED_TRACE(threads);
            Communicator comm(topo);
            registerWorkloadPlans(comm, spec);
            ReplayOptions options;
            options.simThreads = threads;
            options.parallelInterp = parallel_interp;
            ReplayResult replay =
                replayWorkload(comm, spec, storm, options);
            if (!have_reference) {
                reference = replay.fingerprint();
                have_reference = true;
                EXPECT_GT(replay.faultsFired, 0)
                    << "the storm must actually hit the traffic";
            } else {
                EXPECT_EQ(replay.fingerprint(), reference);
            }
        }
    }
}

} // namespace
} // namespace mscclang
