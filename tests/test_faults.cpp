/**
 * @file
 * Tests for the fault-injection and graceful-degradation subsystem:
 * fault schedules on the topology, the flow network's capacity
 * mutations, the interpreter watchdog's clean aborts, and the
 * Communicator's retry-with-fallback policy — plus the FIFO slot
 * contract shared by the verifier and the runtime.
 */

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/verifier.h"
#include "runtime/communicator.h"
#include "runtime/protocol.h"
#include "runtime/tuner.h"
#include "test_util.h"

namespace mscclang {
namespace {

using testing::fillInputs;

FaultEvent
makeFault(ResourceId resource, FaultKind kind, double at_us,
          double duration_us = 0.0, double factor = 0.5)
{
    FaultEvent event;
    event.resource = resource;
    event.kind = kind;
    event.atUs = at_us;
    event.durationUs = duration_us;
    event.factor = factor;
    return event;
}

/** A resource the 4-rank generic ring actually crosses. */
ResourceId
ringResource(const Topology &topo)
{
    const Route &route = topo.route(0, 1);
    EXPECT_FALSE(route.resources.empty());
    return route.resources.front();
}

TEST(Faults, ScheduleValidation)
{
    Topology topo = makeGeneric(1, 4);
    // Unknown resource.
    EXPECT_THROW(topo.setFaultSchedule(FaultSchedule{
                     { makeFault(topo.numResources(),
                                 FaultKind::LinkDown, 1.0) } }),
                 Error);
    EXPECT_THROW(topo.setFaultSchedule(FaultSchedule{
                     { makeFault(-1, FaultKind::LinkDown, 1.0) } }),
                 Error);
    // Negative activation time.
    EXPECT_THROW(topo.setFaultSchedule(FaultSchedule{
                     { makeFault(0, FaultKind::Stall, -1.0) } }),
                 Error);
    // Degrade factor must stay in (0, 1].
    EXPECT_THROW(topo.setFaultSchedule(FaultSchedule{
                     { makeFault(0, FaultKind::Degrade, 1.0, 0.0,
                                 0.0) } }),
                 Error);
    EXPECT_THROW(topo.setFaultSchedule(FaultSchedule{
                     { makeFault(0, FaultKind::Degrade, 1.0, 0.0,
                                 1.5) } }),
                 Error);
    // A well-formed schedule sticks.
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(0, FaultKind::Degrade, 1.0, 5.0, 0.5) } });
    EXPECT_EQ(topo.faultSchedule().events.size(), 1u);
}

TEST(Faults, DegradeSlowsDownAndIsDeterministic)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    ExecOptions exec;
    exec.bytesPerRank = 1 << 20;

    Topology healthy = makeGeneric(1, 4);
    double healthy_us = runIr(healthy, ir, exec).durationUs();

    // Degrade far enough that the link (300 GB/s) drops below the
    // per-thread-block rate cap — otherwise the fault is absorbed.
    Topology faulted = makeGeneric(1, 4);
    faulted.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(faulted), FaultKind::Degrade,
                    healthy_us * 0.2, 0.0, 0.02) } });
    ExecStats first = runIr(faulted, ir, exec);
    ExecStats second = runIr(faulted, ir, exec);

    EXPECT_FALSE(first.aborted);
    EXPECT_EQ(first.faultsSeen, 1);
    EXPECT_EQ(first.firedFaults, std::vector<int>{ 0 });
    EXPECT_GT(first.durationUs(), healthy_us);
    // Replay is bit-deterministic: integer-ns event times, same
    // schedule, same program.
    EXPECT_EQ(first.endNs - first.startNs, second.endNs - second.startNs);
    EXPECT_EQ(first.firedFaults, second.firedFaults);
}

TEST(Faults, StallDelaysButCompletes)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    ExecOptions exec;
    exec.bytesPerRank = 1 << 20;

    Topology healthy = makeGeneric(1, 4);
    double healthy_us = runIr(healthy, ir, exec).durationUs();

    double stall_us = healthy_us * 0.5;
    Topology faulted = makeGeneric(1, 4);
    faulted.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(faulted), FaultKind::Stall,
                    healthy_us * 0.2, stall_us) } });
    ExecStats stats = runIr(faulted, ir, exec);

    EXPECT_FALSE(stats.aborted);
    EXPECT_EQ(stats.faultsSeen, 1);
    // The run pays at least part of the stall but recovers: it lands
    // strictly between healthy and healthy + 2 * stall.
    EXPECT_GT(stats.durationUs(), healthy_us);
    EXPECT_LT(stats.durationUs(), healthy_us + 2.0 * stall_us);
}

TEST(Faults, LinkDownWedgesWithoutWatchdog)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    Topology faulted = makeGeneric(1, 4);
    faulted.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(faulted), FaultKind::LinkDown,
                    10.0) } });
    ExecOptions exec;
    exec.bytesPerRank = 1 << 20;
    // Flows on the dead link freeze at rate 0 (not the starvation
    // error); the event queue drains with the kernel unfinished and
    // runIr diagnoses the wedge with the blocked-set report.
    try {
        runIr(faulted, ir, exec);
        FAIL() << "expected a wedge diagnosis";
    } catch (const RuntimeError &error) {
        EXPECT_NE(std::string(error.what()).find("wedged"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("blocked at step"),
                  std::string::npos);
    }
}

TEST(Faults, TunerDeterministicAcrossThreads)
{
    Topology topo = makeGeneric(1, 4);
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(topo), FaultKind::Degrade, 50.0,
                    0.0, 0.25) } });
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    std::vector<IrProgram> candidates;
    candidates.push_back(compileProgram(*makeAllPairsAllReduce(4, ll)).ir);
    candidates.push_back(compileProgram(*makeRingAllReduce(4, 1, {})).ir);

    TuneOptions serial;
    serial.fromBytes = 1 << 10;
    serial.toBytes = 4 << 20;
    serial.threads = 1;
    TuneOptions wide = serial;
    wide.threads = 4;

    std::vector<TunedWindow> a = tuneWindows(topo, candidates, serial);
    std::vector<TunedWindow> b = tuneWindows(topo, candidates, wide);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].minBytes, b[i].minBytes);
        EXPECT_EQ(a[i].maxBytes, b[i].maxBytes);
        EXPECT_EQ(a[i].candidate, b[i].candidate);
        EXPECT_DOUBLE_EQ(a[i].timeUs, b[i].timeUs);
    }
}

TEST(Faults, SlotContractSingleSourceOfTruth)
{
    // The verifier's deadlock model and the interpreter's ring
    // inboxes must agree on the FIFO depth; both derive from
    // kFifoSlotsPerConnection.
    for (Protocol proto : { Protocol::Simple, Protocol::LL,
                            Protocol::LL128, Protocol::Direct }) {
        EXPECT_EQ(protocolParams(proto).slots, kFifoSlotsPerConnection)
            << protocolName(proto);
    }
    // VerifyOptions defaults to "the runtime's depth" (sentinel 0).
    EXPECT_EQ(VerifyOptions{}.slots, 0);
    // And the sentinel resolves: compileProgram verifies with the
    // default options, so this would throw if 0 were rejected.
    compileProgram(*makeRingAllReduce(4, 1, {}));
}

TEST(Watchdog, AbortsWedgedRunCleanly)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    Topology faulted = makeGeneric(1, 4);
    FaultSchedule schedule{
        { makeFault(ringResource(faulted), FaultKind::LinkDown, 10.0) }
    };
    faulted.setFaultSchedule(schedule);

    EventQueue events;
    FlowNetwork network(faulted, events);
    network.injectFaults(schedule);
    ExecOptions exec;
    exec.bytesPerRank = 1 << 20;
    exec.watchdogNoProgressUs = 100.0;
    IrExecution run(faulted, ir, events, network, exec, nullptr);
    ExecStats stats;
    bool completed = false;
    run.start([&](const ExecStats &s) {
        stats = s;
        completed = true;
    });
    events.run();

    ASSERT_TRUE(completed);
    EXPECT_TRUE(stats.aborted);
    EXPECT_NE(stats.abortReason.find("no progress"), std::string::npos);
    EXPECT_NE(stats.abortReason.find("blocked at step"),
              std::string::npos);
    EXPECT_NE(stats.abortReason.find("waiting for"), std::string::npos);
    EXPECT_EQ(stats.faultsSeen, 1);
    // The abort drained cleanly: no live events remain and the heap
    // holds no leaked entries (the pooled arena is peak-bounded by
    // construction; a leak would show up as live events here).
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(events.heapEntries(), 0u);
    EXPECT_GT(events.poolSlots(), 0u);
}

TEST(Watchdog, ParallelInterpAbortMatchesSerial)
{
    // The watchdog abort under parallel rank-batched stepping is as
    // clean as under the serial engine, and reports the identical
    // wedge: same abort reason text (blocked-set format), same
    // implicated links, same fired faults, same simulated abort time.
    // Pending rank-batch actions staged before the abort must drain
    // (freeing their pooled sends) rather than leak.
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;

    auto run_engine = [&](bool parallel, int threads, ExecStats *out) {
        Topology faulted = makeGeneric(1, 4);
        FaultSchedule schedule{ { makeFault(ringResource(faulted),
                                            FaultKind::LinkDown,
                                            10.0) } };
        faulted.setFaultSchedule(schedule);
        EventQueue events;
        FlowNetwork network(faulted, events);
        network.injectFaults(schedule);
        ExecOptions exec;
        exec.bytesPerRank = 1 << 20;
        exec.watchdogNoProgressUs = 100.0;
        exec.parallelInterp = parallel;
        exec.simThreads = threads;
        network.setThreads(threads);
        IrExecution run(faulted, ir, events, network, exec, nullptr);
        bool completed = false;
        run.start([&](const ExecStats &s) {
            *out = s;
            completed = true;
        });
        events.run();
        ASSERT_TRUE(completed);
        EXPECT_TRUE(events.empty());
        EXPECT_EQ(events.heapEntries(), 0u);
        EXPECT_GT(events.poolSlots(), 0u);
    };

    ExecStats serial;
    run_engine(false, 1, &serial);
    ASSERT_TRUE(serial.aborted);

    for (int threads : { 1, 4 }) {
        SCOPED_TRACE(threads);
        ExecStats par;
        run_engine(true, threads, &par);
        EXPECT_TRUE(par.aborted);
        EXPECT_EQ(serial.abortReason, par.abortReason);
        EXPECT_EQ(serial.endNs, par.endNs);
        EXPECT_EQ(serial.blockedLinks, par.blockedLinks);
        EXPECT_EQ(serial.firedFaults, par.firedFaults);
        EXPECT_EQ(serial.faultsSeen, par.faultsSeen);
    }
}

TEST(Watchdog, AbsoluteTimeoutFires)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    Topology topo = makeGeneric(1, 4);
    ExecOptions exec;
    exec.bytesPerRank = 4 << 20;
    exec.watchdogTimeoutUs = 5.0; // far below any real completion
    ExecStats stats = runIr(topo, ir, exec);
    EXPECT_TRUE(stats.aborted);
    EXPECT_NE(stats.abortReason.find("exceeded"), std::string::npos);
    // Aborted at (launch + timeout), not at natural completion.
    EXPECT_LT(stats.durationUs(), 100.0);
}

TEST(Watchdog, TraceFlushedOnAbort)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    Topology faulted = makeGeneric(1, 4);
    faulted.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(faulted), FaultKind::LinkDown,
                    10.0) } });
    std::string path = ::testing::TempDir() + "mscclang_abort_trace.json";
    ExecOptions exec;
    exec.bytesPerRank = 1 << 20;
    exec.watchdogNoProgressUs = 100.0;
    exec.traceFile = path;
    ExecStats stats = runIr(faulted, ir, exec);
    EXPECT_TRUE(stats.aborted);

    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::ostringstream text;
    text << file.rdbuf();
    std::string json = text.str();
    // Well-formed despite the abort: a complete JSON array.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    size_t last = json.find_last_not_of(" \n");
    ASSERT_NE(last, std::string::npos);
    EXPECT_EQ(json[last], ']');
    // The executed prefix made it into the timeline.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Watchdog, CleanRunUnaffected)
{
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    Topology topo = makeGeneric(1, 4);
    ExecOptions plain;
    plain.bytesPerRank = 1 << 20;
    ExecOptions guarded = plain;
    guarded.watchdogTimeoutUs = 1e7;
    guarded.watchdogNoProgressUs = 1e6;
    ExecStats a = runIr(topo, ir, plain);
    ExecStats b = runIr(topo, ir, guarded);
    EXPECT_FALSE(b.aborted);
    // An armed-but-silent watchdog must not perturb the simulated
    // timeline at all.
    EXPECT_EQ(a.endNs - a.startNs, b.endNs - b.startNs);
}

/** Registers ring as the primary and a Simple ring as fallback. */
struct ChaosHarness
{
    Topology topo = makeGeneric(1, 4);
    IrProgram primary;
    IrProgram fallback;

    ChaosHarness()
    {
        AlgoConfig ll;
        ll.protocol = Protocol::LL;
        ll.instances = 2;
        primary = compileProgram(*makeRingAllReduce(4, 2, ll)).ir;
        primary.name = "ring-primary";
        AlgoConfig simple;
        simple.protocol = Protocol::Simple;
        fallback = compileProgram(*makeRingAllReduce(4, 1, simple)).ir;
        fallback.name = "ring-fallback";
    }

    Communicator
    makeComm() const
    {
        Communicator comm(topo);
        IrProgram ir = primary;
        comm.registerAlgorithm(
            std::move(ir), 0,
            std::numeric_limits<std::uint64_t>::max());
        IrProgram fb = fallback;
        comm.registerFallback("allreduce", [fb](std::uint64_t) {
            return fb;
        });
        return comm;
    }
};

TEST(CommunicatorFaults, RetriesOnFallbackAfterLinkDown)
{
    ChaosHarness harness;
    // Anchor the link-down mid-kernel: measure the healthy latency
    // first, then kill the ring link at 30% of it.
    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm = harness.makeComm();
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.run("allreduce", run).timeUs;
    }
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    healthy_us * 0.3) } });

    Communicator comm = harness.makeComm();
    std::vector<std::vector<float>> inputs =
        fillInputs(comm, harness.primary, bytes);
    RunOptions run;
    run.bytes = bytes;
    run.dataMode = true;
    run.watchdogNoProgressUs = healthy_us; // generous, still fires
    RunResult result = comm.run("allreduce", run);

    // The degradation record: aborted primary, fallback finished.
    EXPECT_EQ(result.attempts, 2);
    EXPECT_TRUE(result.degraded);
    EXPECT_GE(result.faultsSeen, 1);
    EXPECT_EQ(result.algorithm, "ring-fallback (fallback)");
    EXPECT_TRUE(result.stats.aborted == false);

    // Despite the aborted in-place attempt, the store was rolled
    // back and the fallback produced oracle-correct buffers.
    auto program = makeRingAllReduce(4, 1, {});
    std::vector<std::vector<float>> outputs(4);
    for (int r = 0; r < 4; r++) {
        outputs[r] = comm.store().buffer(r, BufferKind::Output,
                                         harness.fallback.inPlace);
    }
    EXPECT_EQ(compareToReference(program->collective(), inputs,
                                 outputs, ReduceOp::Sum),
              "");
}

TEST(CommunicatorFaults, RetryIsDeterministic)
{
    ChaosHarness harness;
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    20.0) } });
    RunOptions run;
    run.bytes = 1 << 20;
    run.watchdogNoProgressUs = 200.0;

    Communicator first = harness.makeComm();
    RunResult a = first.run("allreduce", run);
    Communicator second = harness.makeComm();
    RunResult b = second.run("allreduce", run);

    EXPECT_EQ(a.attempts, 2);
    EXPECT_EQ(b.attempts, a.attempts);
    EXPECT_EQ(a.faultsSeen, b.faultsSeen);
    EXPECT_DOUBLE_EQ(a.timeUs, b.timeUs);
    EXPECT_EQ(a.algorithm, b.algorithm);
}

TEST(CommunicatorFaults, ThrowsWhenAllAttemptsAbort)
{
    ChaosHarness harness;
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    20.0) } });
    RunOptions run;
    run.bytes = 1 << 20;
    run.watchdogNoProgressUs = 200.0;

    // maxAttempts == 1: the abort is final and carries the report.
    {
        Communicator comm = harness.makeComm();
        RunOptions once = run;
        once.maxAttempts = 1;
        try {
            comm.run("allreduce", once);
            FAIL() << "expected the single attempt to abort";
        } catch (const RuntimeError &error) {
            EXPECT_NE(std::string(error.what()).find("aborted"),
                      std::string::npos);
            EXPECT_NE(std::string(error.what()).find("blocked at step"),
                      std::string::npos);
        }
    }

    // No fallback registered: nothing to retry on.
    {
        Communicator comm(harness.topo);
        IrProgram ir = harness.primary;
        comm.registerAlgorithm(
            std::move(ir), 0,
            std::numeric_limits<std::uint64_t>::max());
        EXPECT_THROW(comm.run("allreduce", run), RuntimeError);
    }
}

TEST(CommunicatorFaults, RunProgramReportsAbortWithoutRetry)
{
    ChaosHarness harness;
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    20.0) } });
    Communicator comm(harness.topo);
    RunOptions run;
    run.bytes = 1 << 20;
    run.watchdogNoProgressUs = 200.0;
    RunResult result = comm.runProgram(harness.primary, run);
    EXPECT_TRUE(result.stats.aborted);
    EXPECT_EQ(result.attempts, 1);
}

TEST(CommunicatorComposed, FaultTimelineSpansComposition)
{
    // One fault timeline covers the whole composed sequence: an
    // event timed inside the second kernel's window fires exactly
    // once, in the second kernel, at the rebased timestamp — and a
    // fired event never re-fires in later kernels.
    ChaosHarness harness;
    std::vector<const IrProgram *> irs{ &harness.primary,
                                        &harness.primary };
    RunOptions run;
    run.bytes = 1 << 20;

    Communicator healthy = harness.makeComm();
    RunResult base = healthy.runComposed(irs, run);
    double kernel_us = base.timeUs / 2.0;

    // Inside kernel 2's window (after kernel 1 completes).
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::Degrade,
                    kernel_us * 1.3, 0.0, 0.02) } });
    Communicator in_second = harness.makeComm();
    RunResult hit = in_second.runComposed(irs, run);
    EXPECT_FALSE(hit.stats.aborted);
    EXPECT_EQ(hit.faultsSeen, 1);
    EXPECT_GT(hit.timeUs, base.timeUs);

    // Inside kernel 1's window: fires there, consumed, kernel 2
    // runs clean — not once per kernel.
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::Degrade,
                    kernel_us * 0.3, 0.0, 0.02) } });
    Communicator in_first = harness.makeComm();
    RunResult once = in_first.runComposed(irs, run);
    EXPECT_FALSE(once.stats.aborted);
    EXPECT_EQ(once.faultsSeen, 1);

    // Replay is deterministic.
    Communicator again = harness.makeComm();
    RunResult replay = again.runComposed(irs, run);
    EXPECT_DOUBLE_EQ(replay.timeUs, once.timeUs);
    EXPECT_EQ(replay.faultsSeen, once.faultsSeen);
}

TEST(CommunicatorComposed, AbortMidCompositionStopsTheChain)
{
    ChaosHarness harness;
    std::vector<const IrProgram *> irs{ &harness.primary,
                                        &harness.fallback };
    RunOptions run;
    run.bytes = 1 << 20;

    Communicator healthy = harness.makeComm();
    double first_us =
        healthy.runProgram(harness.primary, run).timeUs;
    run.watchdogNoProgressUs = first_us;

    // Kernel 1 dies: the chain stops before kernel 2 ever launches.
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    first_us * 0.3) } });
    {
        Communicator comm = harness.makeComm();
        RunResult result = comm.runComposed(irs, run);
        EXPECT_TRUE(result.stats.aborted);
        EXPECT_EQ(result.algorithm, "ring-primary");
        EXPECT_FALSE(result.stats.blockedLinks.empty());
        EXPECT_NE(result.stats.abortReason.find("blocked at step"),
                  std::string::npos);
    }

    // Kernel 2 dies: kernel 1's work is reported, the chain stops
    // at the failing kernel.
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                    first_us * 1.3) } });
    {
        Communicator comm = harness.makeComm();
        RunResult result = comm.runComposed(irs, run);
        EXPECT_TRUE(result.stats.aborted);
        EXPECT_EQ(result.algorithm, "ring-primary+ring-fallback");
        EXPECT_GT(result.timeUs, first_us);
    }
}

TEST(CommunicatorFaults, OverlappingFaultsConsumeInTimestampOrder)
{
    // A Degrade window containing a LinkDown on the same resource,
    // with the two events listed in opposite orders in the user's
    // schedule. The working schedule is timestamp-sorted before
    // arming, so both spellings replay — and are consumed across
    // retries — identically.
    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        ChaosHarness harness;
        Communicator comm = harness.makeComm();
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.run("allreduce", run).timeUs;
    }

    auto run_with = [&](bool down_first) {
        ChaosHarness harness;
        FaultEvent degrade =
            makeFault(ringResource(harness.topo), FaultKind::Degrade,
                      healthy_us * 0.2, healthy_us * 4.0, 0.02);
        FaultEvent down =
            makeFault(ringResource(harness.topo), FaultKind::LinkDown,
                      healthy_us * 0.5);
        FaultSchedule schedule;
        if (down_first)
            schedule.events = { down, degrade };
        else
            schedule.events = { degrade, down };
        harness.topo.setFaultSchedule(schedule);
        Communicator comm = harness.makeComm();
        RunOptions run;
        run.bytes = bytes;
        run.watchdogNoProgressUs = healthy_us;
        return comm.run("allreduce", run);
    };

    RunResult a = run_with(true);
    RunResult b = run_with(false);
    EXPECT_EQ(a.attempts, 2);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.faultsSeen, b.faultsSeen);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_DOUBLE_EQ(a.timeUs, b.timeUs);
    EXPECT_EQ(a.quarantinedLinks, b.quarantinedLinks);
}

TEST(CommunicatorWindows, ExactBoundaryIsInclusive)
{
    Topology topo = makeGeneric(1, 4);
    Communicator comm(topo);
    IrProgram small = compileProgram(*makeAllPairsAllReduce(4, {})).ir;
    small.name = "small";
    IrProgram big = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    big.name = "big";
    comm.registerAlgorithm(small, 0, 1 << 20);
    comm.registerAlgorithm(big, (1 << 20) + 1,
                           std::numeric_limits<std::uint64_t>::max());

    // bytes == maxBytes must select the window, not fall past it.
    RunOptions at_boundary;
    at_boundary.bytes = 1 << 20;
    EXPECT_EQ(comm.run("allreduce", at_boundary).algorithm, "small");
    RunOptions past;
    past.bytes = (1 << 20) + 1;
    EXPECT_EQ(comm.run("allreduce", past).algorithm, "big");
}

TEST(CommunicatorWindows, OverlapsResolveToMostSpecificLatest)
{
    Topology topo = makeGeneric(1, 4);
    Communicator comm(topo);
    IrProgram broad = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    broad.name = "broad";
    IrProgram narrow = compileProgram(*makeAllPairsAllReduce(4, {})).ir;
    narrow.name = "narrow";
    IrProgram refresh = compileProgram(*makeRingAllReduce(4, 2, {})).ir;
    refresh.name = "refresh";
    // broad covers everything; narrow overlaps with a higher lower
    // bound; refresh re-registers narrow's exact window later.
    comm.registerAlgorithm(
        broad, 0, std::numeric_limits<std::uint64_t>::max());
    comm.registerAlgorithm(narrow, 1 << 16, 1 << 22);
    comm.registerAlgorithm(refresh, 1 << 16, 1 << 22);

    RunOptions below;
    below.bytes = 1 << 10;
    EXPECT_EQ(comm.run("allreduce", below).algorithm, "broad");
    RunOptions inside;
    inside.bytes = 1 << 20;
    // Largest minBytes wins; the tie between narrow and refresh goes
    // to the latest registration.
    EXPECT_EQ(comm.run("allreduce", inside).algorithm, "refresh");
    RunOptions above;
    above.bytes = 1 << 23;
    EXPECT_EQ(comm.run("allreduce", above).algorithm, "broad");
}

} // namespace
} // namespace mscclang
