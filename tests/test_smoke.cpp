/**
 * @file
 * End-to-end smoke tests: every collective program in the library
 * traces, compiles and passes static verification on a small machine.
 */

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "compiler/compiler.h"

namespace mscclang {
namespace {

TEST(Smoke, RingAllReduceCompilesAndVerifies)
{
    auto prog = makeRingAllReduce(4, 2, AlgoConfig{});
    prog->checkPostcondition();
    Compiled out = compileProgram(*prog);
    EXPECT_EQ(out.ir.numRanks, 4);
    EXPECT_GT(out.stats.fusion.rrs + out.stats.fusion.rrcs +
              out.stats.fusion.rcs, 0);
}

TEST(Smoke, AllPairsCompilesAndVerifies)
{
    auto prog = makeAllPairsAllReduce(4, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, HierarchicalAllReduceCompilesAndVerifies)
{
    auto prog = makeHierarchicalAllReduce(2, 3, 2, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, TwoStepAllToAllCompilesAndVerifies)
{
    auto prog = makeTwoStepAllToAll(2, 2, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, NaiveAllToAllCompilesAndVerifies)
{
    auto prog = makeNaiveAllToAll(4, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, AllToNextCompilesAndVerifies)
{
    auto prog = makeAllToNext(2, 3, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, NaiveAllToNextCompilesAndVerifies)
{
    auto prog = makeNaiveAllToNext(2, 3, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, RingAllGatherCompilesAndVerifies)
{
    auto prog = makeRingAllGather(4, 2, AlgoConfig{});
    prog->checkPostcondition();
    compileProgram(*prog);
}

TEST(Smoke, Sccl122AllGatherCompilesAndVerifies)
{
    Topology dgx1 = makeDgx1();
    auto prog = makeSccl122AllGather(dgx1, AlgoConfig{});
    prog->checkPostcondition();
    CompileOptions options;
    options.topology = &dgx1;
    compileProgram(*prog, options);
}

TEST(Smoke, InstancesSplitPrograms)
{
    AlgoConfig config;
    config.instances = 3;
    auto prog = makeRingAllReduce(4, 1, config);
    Compiled out = compileProgram(*prog);
    // Each instance needs its own channel.
    EXPECT_GE(out.stats.channels, 3);
}

} // namespace
} // namespace mscclang
