/**
 * @file
 * Structural invariants of the scheduler's output (paper §5):
 * exactly one sending and one receiving thread block per connection,
 * at most one send/receive peer per thread block, disjoint channels
 * for parallelized instances, honored channel directives, valid
 * cross-thread-block dependencies, the cooperative-launch limit with
 * the IB merge fallback, and slot-bounded send schedules.
 */

#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"

namespace mscclang {
namespace {

/** Checks the §5 structural constraints on any IR. */
void
checkStructure(const IrProgram &ir)
{
    using Conn = std::tuple<int, int, int>;
    std::map<Conn, int> senders, receivers;
    for (const IrGpu &gpu : ir.gpus) {
        std::set<int> tb_ids;
        for (const IrThreadBlock &tb : gpu.threadBlocks) {
            EXPECT_TRUE(tb_ids.insert(tb.id).second)
                << "duplicate tb id on rank " << gpu.rank;
            if (tb.sendPeer >= 0)
                senders[{ gpu.rank, tb.sendPeer, tb.channel }]++;
            if (tb.recvPeer >= 0)
                receivers[{ tb.recvPeer, gpu.rank, tb.channel }]++;
            for (size_t s = 0; s < tb.steps.size(); s++) {
                const IrInstruction &instr = tb.steps[s];
                if (irOpSends(instr.op)) {
                    EXPECT_GE(tb.sendPeer, 0);
                }
                if (irOpReceives(instr.op)) {
                    EXPECT_GE(tb.recvPeer, 0);
                }
                for (const IrDep &dep : instr.deps) {
                    // Dependencies reference existing TBs and
                    // earlier-completing steps on the same rank.
                    ASSERT_GE(dep.tb, 0);
                    ASSERT_LT(dep.tb,
                              static_cast<int>(
                                  gpu.threadBlocks.size()));
                    EXPECT_GE(dep.step, 0);
                    EXPECT_LT(dep.step,
                              static_cast<int>(
                                  gpu.threadBlocks[dep.tb]
                                      .steps.size()));
                    EXPECT_NE(dep.tb, tb.id)
                        << "self-TB dependency is redundant";
                }
            }
        }
    }
    // Exactly one sending and one receiving thread block per used
    // connection (paper §5's design restriction).
    for (const auto &[conn, count] : senders)
        EXPECT_EQ(count, 1);
    for (const auto &[conn, count] : receivers)
        EXPECT_EQ(count, 1);
    // Every connection someone sends on is received on.
    for (const auto &[conn, count] : senders)
        EXPECT_TRUE(receivers.count(conn));
}

/** Send/recv instruction counts must match per connection. */
void
checkMessageBalance(const IrProgram &ir)
{
    using Conn = std::tuple<int, int, int>;
    std::map<Conn, int> sent, received;
    for (const IrGpu &gpu : ir.gpus) {
        for (const IrThreadBlock &tb : gpu.threadBlocks) {
            for (const IrInstruction &instr : tb.steps) {
                if (irOpSends(instr.op))
                    sent[{ gpu.rank, tb.sendPeer, tb.channel }]++;
                if (irOpReceives(instr.op))
                    received[{ tb.recvPeer, gpu.rank, tb.channel }]++;
            }
        }
    }
    EXPECT_EQ(sent, received);
}

TEST(Schedule, RingStructure)
{
    AlgoConfig config;
    config.instances = 4;
    Compiled out = compileProgram(*makeRingAllReduce(8, 4, config));
    checkStructure(out.ir);
    checkMessageBalance(out.ir);
}

TEST(Schedule, AllPairsStructure)
{
    Compiled out = compileProgram(*makeAllPairsAllReduce(8, {}));
    checkStructure(out.ir);
    checkMessageBalance(out.ir);
}

TEST(Schedule, HierarchicalStructure)
{
    AlgoConfig config;
    config.instances = 2;
    Compiled out =
        compileProgram(*makeHierarchicalAllReduce(2, 4, 2, config));
    checkStructure(out.ir);
    checkMessageBalance(out.ir);
}

TEST(Schedule, TwoStepStructure)
{
    Compiled out = compileProgram(*makeTwoStepAllToAll(3, 4, {}));
    checkStructure(out.ir);
    checkMessageBalance(out.ir);
}

TEST(Schedule, AllToNextStructure)
{
    AlgoConfig config;
    config.instances = 8;
    Compiled out = compileProgram(*makeAllToNext(2, 8, config));
    checkStructure(out.ir);
    checkMessageBalance(out.ir);
}

TEST(Schedule, ChannelDirectivesAreHonored)
{
    // Hierarchical AllReduce puts intra phases on channels 0/2 and
    // inter on 1; with instances=1 the channels appear verbatim.
    Compiled out =
        compileProgram(*makeHierarchicalAllReduce(2, 3, 1, {}));
    std::set<int> channels;
    for (const IrGpu &gpu : out.ir.gpus) {
        for (const IrThreadBlock &tb : gpu.threadBlocks)
            channels.insert(tb.channel);
    }
    EXPECT_TRUE(channels.count(0));
    EXPECT_TRUE(channels.count(1));
    EXPECT_TRUE(channels.count(2));
}

TEST(Schedule, ParallelInstancesGetDisjointChannels)
{
    ProgramOptions options;
    options.instances = 4;
    auto coll = std::make_shared<AllReduceCollective>(2, 1);
    Program prog(coll, options);
    prog.chunk(0, BufferKind::Input, 0).copy(1, BufferKind::Scratch, 0);
    CompileOptions copts;
    copts.verify = false; // fragment, not a whole collective
    Compiled out = compileProgram(prog, copts);
    std::set<int> send_channels;
    for (const IrThreadBlock &tb : out.ir.gpus[0].threadBlocks) {
        if (tb.sendPeer == 1)
            send_channels.insert(tb.channel);
    }
    EXPECT_EQ(send_channels.size(), 4u);
}

TEST(Schedule, ConflictingDirectivesOnFusedChainRejected)
{
    // A relay whose receive and its own local reuse force one chain
    // onto two different channels must be a compile error... the DSL
    // blocks fusion across differing directives instead, so build the
    // conflict directly: two ops with different directives that reuse
    // one chain is impossible by construction — verify the fusion
    // barrier held (compiles fine, unfused).
    auto coll = std::make_shared<AllReduceCollective>(3, 1);
    Program prog(coll);
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0)
                     .copy(1, BufferKind::Scratch, 0, OpOptions{ 2 });
    c.copy(2, BufferKind::Scratch, 0, OpOptions{ 3 });
    CompileOptions copts;
    copts.verify = false; // fragment, not a whole collective
    Compiled out = compileProgram(prog, copts);
    checkStructure(out.ir);
    std::set<int> channels;
    for (const IrGpu &gpu : out.ir.gpus) {
        for (const IrThreadBlock &tb : gpu.threadBlocks) {
            if (!tb.steps.empty())
                channels.insert(tb.channel);
        }
    }
    EXPECT_TRUE(channels.count(2));
    EXPECT_TRUE(channels.count(3));
}

TEST(Schedule, ThreadBlockLimitEnforced)
{
    AlgoConfig config;
    config.instances = 8;
    auto prog = makeRingAllReduce(8, 4, config); // 32 channels
    CompileOptions copts;
    copts.maxThreadBlocks = 16;
    EXPECT_THROW(compileProgram(*prog, copts), CompileError);
}

TEST(Schedule, IbMergeFallbackUnderSmPressure)
{
    // Naive AllToAll on 2x8: 15 peers. Without a limit the IB send
    // and recv connections get separate thread blocks; with a tight
    // limit they merge.
    Topology topo = makeGeneric(2, 8);
    auto prog = makeNaiveAllToAll(16, {});
    CompileOptions loose;
    loose.topology = &topo;
    Compiled unmerged = compileProgram(*prog, loose);

    auto prog2 = makeNaiveAllToAll(16, {});
    CompileOptions tight;
    tight.topology = &topo;
    tight.maxThreadBlocks = 16;
    Compiled merged = compileProgram(*prog2, tight);

    EXPECT_GT(unmerged.ir.maxThreadBlocks(),
              merged.ir.maxThreadBlocks());
    EXPECT_LE(merged.ir.maxThreadBlocks(), 16);
    checkStructure(merged.ir);
    checkMessageBalance(merged.ir);
}

TEST(Schedule, SlotGateBoundsOutstandingSends)
{
    // Within every thread block's program order, the number of sends
    // on a connection may exceed the matching receives already
    // retired GLOBALLY by at most the slot count — approximated here
    // per thread block: no more than `slots` consecutive sends on
    // one connection before that block performs any receive is only
    // valid if the peers drain; the verifier's success is the real
    // check, so assert it explicitly at slots = 8 and 1 ... 8 must
    // pass for naive exchange patterns.
    Topology topo = makeGeneric(2, 4);
    auto prog = makeNaiveAllToAll(8, {});
    CompileOptions copts;
    copts.topology = &topo;
    Compiled out = compileProgram(*prog, copts);
    // already verified at 8 slots inside compileProgram; nothing to
    // add here beyond structure:
    checkStructure(out.ir);
}

TEST(Schedule, EmptyProgramYieldsEmptyIr)
{
    auto coll = std::make_shared<AllReduceCollective>(2, 1);
    Program prog(coll);
    // An in-place "identity" program: nothing to do. The compiler
    // should produce empty GPU programs rather than fail (the
    // postcondition of allreduce is NOT satisfied though).
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(graph.numLive(), 0);
}

} // namespace
} // namespace mscclang
