/**
 * @file
 * Unit tests for the simulation substrate: the discrete-event queue
 * (ordering, same-time FIFO, cancellation) and the flow-level
 * network model (rate caps, max-min fair sharing, conservation,
 * completion timing).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/event_queue.h"
#include "sim/flow_network.h"

namespace mscclang {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue events;
    std::vector<int> order;
    events.schedule(30, [&] { order.push_back(3); });
    events.schedule(10, [&] { order.push_back(1); });
    events.schedule(20, [&] { order.push_back(2); });
    events.run();
    EXPECT_EQ(order, (std::vector<int>{ 1, 2, 3 }));
    EXPECT_EQ(events.now(), 30);
    EXPECT_EQ(events.executed(), 3u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue events;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        events.schedule(5, [&order, i] { order.push_back(i); });
    events.run();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksScheduleMore)
{
    EventQueue events;
    int fired = 0;
    events.schedule(1, [&] {
        fired++;
        events.scheduleAfter(5, [&] { fired++; });
    });
    events.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(events.now(), 6);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue events;
    int fired = 0;
    EventId id = events.schedule(10, [&] { fired++; });
    events.schedule(5, [&] { fired += 10; });
    events.cancel(id);
    events.run();
    EXPECT_EQ(fired, 10);
    EXPECT_TRUE(events.empty());
}

TEST(EventQueue, SchedulingIntoPastThrows)
{
    EventQueue events;
    events.schedule(10, [] {});
    events.runOne();
    EXPECT_THROW(events.schedule(5, [] {}), RuntimeError);
}

TEST(EventQueue, UsToNsRounds)
{
    EXPECT_EQ(usToNs(1.0), 1000);
    EXPECT_EQ(usToNs(0.0004), 0); // below resolution
    EXPECT_EQ(usToNs(2.5), 2500);
}

// ------------------------------------------------------------------

/** One-resource topology with capacity 10 GB/s. */
Topology
tinyFabric(double cap_gbps = 10.0)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = cap_gbps;
    return makeGeneric(1, 2, params);
}

TEST(FlowNetwork, SingleFlowRunsAtCap)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    TimeNs done = -1;
    // 10 GB/s cap on the route, flow capped at 4 GB/s -> 1000 bytes
    // take 250 ns.
    net.startFlow(topo.route(0, 1).resources, 4.0, 1000.0,
                  [&] { done = events.now(); });
    events.run();
    EXPECT_NEAR(static_cast<double>(done), 250.0, 2.0);
    EXPECT_NEAR(net.deliveredBytes(), 1000.0, 1e-3);
}

TEST(FlowNetwork, ResourceCapSharedFairly)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    TimeNs done_a = -1, done_b = -1;
    // Two 1000-byte flows on the same egress, each individually able
    // to do 10 GB/s: they share 5/5 and finish together at 200ns.
    auto route = topo.route(0, 1).resources;
    net.startFlow(route, 100.0, 1000.0, [&] { done_a = events.now(); });
    net.startFlow(route, 100.0, 1000.0, [&] { done_b = events.now(); });
    events.run();
    EXPECT_NEAR(static_cast<double>(done_a), 200.0, 3.0);
    EXPECT_NEAR(static_cast<double>(done_b), 200.0, 3.0);
}

TEST(FlowNetwork, MaxMinRedistributesUnusedShare)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    // Flow A capped at 2 GB/s; flow B uncapped: B should get the
    // remaining 8 GB/s (not the naive 5).
    auto route = topo.route(0, 1).resources;
    FlowId a = net.startFlow(route, 2.0, 1e6, [] {});
    FlowId b = net.startFlow(route, 100.0, 1e6, [] {});
    // Drive one recompute.
    events.runOne();
    EXPECT_NEAR(net.currentRateGBps(a), 2.0, 1e-6);
    EXPECT_NEAR(net.currentRateGBps(b), 8.0, 1e-6);
    EXPECT_EQ(net.activeFlows(), 2);
}

TEST(FlowNetwork, DisjointRoutesDoNotInterfere)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = 10.0;
    Topology topo = makeGeneric(1, 4, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    FlowId a = net.startFlow(topo.route(0, 1).resources, 100.0, 1e6,
                             [] {});
    FlowId b = net.startFlow(topo.route(2, 3).resources, 100.0, 1e6,
                             [] {});
    events.runOne();
    EXPECT_NEAR(net.currentRateGBps(a), 10.0, 1e-6);
    EXPECT_NEAR(net.currentRateGBps(b), 10.0, 1e-6);
}

TEST(FlowNetwork, RatesReadjustWhenFlowsFinish)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    auto route = topo.route(0, 1).resources;
    TimeNs done_small = -1, done_big = -1;
    net.startFlow(route, 100.0, 500.0,
                  [&] { done_small = events.now(); });
    net.startFlow(route, 100.0, 1500.0,
                  [&] { done_big = events.now(); });
    events.run();
    // Shared 5/5 until the small one drains at t=100; the big one
    // then runs at 10: 1500 = 5*100 + 10*(t-100) -> t = 200.
    EXPECT_NEAR(static_cast<double>(done_small), 100.0, 3.0);
    EXPECT_NEAR(static_cast<double>(done_big), 200.0, 5.0);
    EXPECT_NEAR(net.deliveredBytes(), 2000.0, 1e-2);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    bool done = false;
    net.startFlow(topo.route(0, 1).resources, 1.0, 0.0,
                  [&] { done = true; });
    events.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(events.now(), 0);
}

TEST(FlowNetwork, RejectsBadFlows)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    EXPECT_THROW(
        net.startFlow(topo.route(0, 1).resources, 0.0, 10.0, [] {}),
        RuntimeError);
    EXPECT_THROW(
        net.startFlow(topo.route(0, 1).resources, 1.0, -1.0, [] {}),
        RuntimeError);
}

TEST(FlowNetwork, ManyFlowsConserveBytes)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = 7.0;
    Topology topo = makeGeneric(1, 8, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    double total = 0.0;
    int completed = 0;
    for (int i = 0; i < 64; i++) {
        int src = i % 8, dst = (i + 1 + i / 8) % 8;
        if (src == dst)
            dst = (dst + 1) % 8;
        double bytes = 100.0 * (i + 1);
        total += bytes;
        net.startFlow(topo.route(src, dst).resources, 2.5, bytes,
                      [&] { completed++; });
    }
    events.run();
    EXPECT_EQ(completed, 64);
    EXPECT_NEAR(net.deliveredBytes(), total, 1.0);
    EXPECT_EQ(net.activeFlows(), 0);
}

} // namespace
} // namespace mscclang
