/**
 * @file
 * Unit tests for the simulation substrate: the discrete-event queue
 * (ordering, same-time FIFO, cancellation) and the flow-level
 * network model (rate caps, max-min fair sharing, conservation,
 * completion timing).
 */

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/event_queue.h"
#include "sim/flow_network.h"

namespace mscclang {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue events;
    std::vector<int> order;
    events.schedule(30, [&] { order.push_back(3); });
    events.schedule(10, [&] { order.push_back(1); });
    events.schedule(20, [&] { order.push_back(2); });
    events.run();
    EXPECT_EQ(order, (std::vector<int>{ 1, 2, 3 }));
    EXPECT_EQ(events.now(), 30);
    EXPECT_EQ(events.executed(), 3u);
}

TEST(EventQueue, SameTimeIsFifo)
{
    EventQueue events;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        events.schedule(5, [&order, i] { order.push_back(i); });
    events.run();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbacksScheduleMore)
{
    EventQueue events;
    int fired = 0;
    events.schedule(1, [&] {
        fired++;
        events.scheduleAfter(5, [&] { fired++; });
    });
    events.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(events.now(), 6);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue events;
    int fired = 0;
    EventId id = events.schedule(10, [&] { fired++; });
    events.schedule(5, [&] { fired += 10; });
    events.cancel(id);
    events.run();
    EXPECT_EQ(fired, 10);
    EXPECT_TRUE(events.empty());
}

TEST(EventQueue, CancelChurnKeepsStorageBounded)
{
    // Regression: cancelled events used to linger in the heap and in
    // a cancelled-id set until their (arbitrarily far) deadline, so a
    // cancel/reschedule pattern — exactly what FlowNetwork's update
    // coalescing does — grew memory without bound. The pooled-slot
    // queue must stay O(live events).
    EventQueue events;
    EventId pending = 0;
    for (int i = 0; i < 100000; i++) {
        if (pending != 0)
            events.cancel(pending);
        pending = events.schedule(1000000 + i, [] {});
    }
    EXPECT_LE(events.poolSlots(), 64u);
    EXPECT_LE(events.heapEntries(), 256u); // 1 live + bounded slack
    events.cancel(pending);
    events.run();
    EXPECT_EQ(events.executed(), 0u);
    EXPECT_TRUE(events.empty());
}

TEST(EventQueue, StaleCancelDoesNotKillSlotReuser)
{
    EventQueue events;
    int fired = 0;
    EventId a = events.schedule(1, [&] { fired += 1; });
    events.runOne();
    // a's pool slot is free and may be handed to b; cancelling with
    // the stale id must be a no-op, not kill b.
    EventId b = events.schedule(2, [&] { fired += 10; });
    events.cancel(a);
    events.cancel(a);
    events.run();
    EXPECT_EQ(fired, 11);
    EXPECT_NE(a, b);
}

TEST(EventQueue, CancelledSlotIsRecycled)
{
    EventQueue events;
    for (int i = 0; i < 1000; i++)
        events.cancel(events.schedule(10, [] {}));
    EXPECT_LE(events.poolSlots(), 8u);
    events.run();
    EXPECT_EQ(events.executed(), 0u);
}

TEST(EventQueue, SchedulingIntoPastThrows)
{
    EventQueue events;
    events.schedule(10, [] {});
    events.runOne();
    EXPECT_THROW(events.schedule(5, [] {}), RuntimeError);
}

TEST(EventQueue, UsToNsRounds)
{
    EXPECT_EQ(usToNs(1.0), 1000);
    EXPECT_EQ(usToNs(0.0004), 0); // below resolution
    EXPECT_EQ(usToNs(2.5), 2500);
}

// ------------------------------------------------------------------

/** One-resource topology with capacity 10 GB/s. */
Topology
tinyFabric(double cap_gbps = 10.0)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = cap_gbps;
    return makeGeneric(1, 2, params);
}

TEST(FlowNetwork, SingleFlowRunsAtCap)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    TimeNs done = -1;
    // 10 GB/s cap on the route, flow capped at 4 GB/s -> 1000 bytes
    // take 250 ns.
    net.startFlow(topo.route(0, 1).resources, 4.0, 1000.0,
                  [&] { done = events.now(); });
    events.run();
    EXPECT_NEAR(static_cast<double>(done), 250.0, 2.0);
    EXPECT_NEAR(net.deliveredBytes(), 1000.0, 1e-3);
}

TEST(FlowNetwork, ResourceCapSharedFairly)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    TimeNs done_a = -1, done_b = -1;
    // Two 1000-byte flows on the same egress, each individually able
    // to do 10 GB/s: they share 5/5 and finish together at 200ns.
    auto route = topo.route(0, 1).resources;
    net.startFlow(route, 100.0, 1000.0, [&] { done_a = events.now(); });
    net.startFlow(route, 100.0, 1000.0, [&] { done_b = events.now(); });
    events.run();
    EXPECT_NEAR(static_cast<double>(done_a), 200.0, 3.0);
    EXPECT_NEAR(static_cast<double>(done_b), 200.0, 3.0);
}

TEST(FlowNetwork, MaxMinRedistributesUnusedShare)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    // Flow A capped at 2 GB/s; flow B uncapped: B should get the
    // remaining 8 GB/s (not the naive 5).
    auto route = topo.route(0, 1).resources;
    FlowId a = net.startFlow(route, 2.0, 1e6, [] {});
    FlowId b = net.startFlow(route, 100.0, 1e6, [] {});
    // Drive one recompute.
    events.runOne();
    EXPECT_NEAR(net.currentRateGBps(a), 2.0, 1e-6);
    EXPECT_NEAR(net.currentRateGBps(b), 8.0, 1e-6);
    EXPECT_EQ(net.activeFlows(), 2);
}

TEST(FlowNetwork, DisjointRoutesDoNotInterfere)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = 10.0;
    Topology topo = makeGeneric(1, 4, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    FlowId a = net.startFlow(topo.route(0, 1).resources, 100.0, 1e6,
                             [] {});
    FlowId b = net.startFlow(topo.route(2, 3).resources, 100.0, 1e6,
                             [] {});
    events.runOne();
    EXPECT_NEAR(net.currentRateGBps(a), 10.0, 1e-6);
    EXPECT_NEAR(net.currentRateGBps(b), 10.0, 1e-6);
}

TEST(FlowNetwork, RatesReadjustWhenFlowsFinish)
{
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    auto route = topo.route(0, 1).resources;
    TimeNs done_small = -1, done_big = -1;
    net.startFlow(route, 100.0, 500.0,
                  [&] { done_small = events.now(); });
    net.startFlow(route, 100.0, 1500.0,
                  [&] { done_big = events.now(); });
    events.run();
    // Shared 5/5 until the small one drains at t=100; the big one
    // then runs at 10: 1500 = 5*100 + 10*(t-100) -> t = 200.
    EXPECT_NEAR(static_cast<double>(done_small), 100.0, 3.0);
    EXPECT_NEAR(static_cast<double>(done_big), 200.0, 5.0);
    EXPECT_NEAR(net.deliveredBytes(), 2000.0, 1e-2);
}

TEST(FlowNetwork, ZeroByteFlowCompletesImmediately)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    bool done = false;
    net.startFlow(topo.route(0, 1).resources, 1.0, 0.0,
                  [&] { done = true; });
    events.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(events.now(), 0);
}

TEST(FlowNetwork, RejectsBadFlows)
{
    Topology topo = tinyFabric();
    EventQueue events;
    FlowNetwork net(topo, events);
    EXPECT_THROW(
        net.startFlow(topo.route(0, 1).resources, 0.0, 10.0, [] {}),
        RuntimeError);
    EXPECT_THROW(
        net.startFlow(topo.route(0, 1).resources, 1.0, -1.0, [] {}),
        RuntimeError);
}

TEST(FlowNetwork, ManyFlowsConserveBytes)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = 7.0;
    Topology topo = makeGeneric(1, 8, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    double total = 0.0;
    int completed = 0;
    for (int i = 0; i < 64; i++) {
        int src = i % 8, dst = (i + 1 + i / 8) % 8;
        if (src == dst)
            dst = (dst + 1) % 8;
        double bytes = 100.0 * (i + 1);
        total += bytes;
        net.startFlow(topo.route(src, dst).resources, 2.5, bytes,
                      [&] { completed++; });
    }
    events.run();
    EXPECT_EQ(completed, 64);
    EXPECT_NEAR(net.deliveredBytes(), total, 1.0);
    EXPECT_EQ(net.activeFlows(), 0);
}

TEST(FlowNetwork, BurstyStartsConservePerResourceBytes)
{
    // Exercises the incremental bookkeeping (membership counts,
    // lazily compacted touched set, usage decrements) under waves of
    // flows that start from completion callbacks, so starts and
    // finishes interleave and resources repeatedly drain to zero
    // flows and refill.
    MachineParams params;
    params.nvlinkGpuBwGBps = 5.0;
    Topology topo = makeGeneric(1, 6, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    std::vector<double> expected(topo.numResources(), 0.0);
    double total = 0.0;
    int completed = 0;
    std::function<void(int)> burst = [&](int wave) {
        if (wave >= 3)
            return;
        for (int i = 0; i < 12; i++) {
            int src = (i + wave) % 6;
            int dst = (src + 1 + i % 3) % 6;
            double bytes = 50.0 * (i + 1 + wave);
            const std::vector<ResourceId> &resources =
                topo.route(src, dst).resources;
            for (ResourceId r : resources)
                expected[r] += bytes;
            total += bytes;
            bool leader = i == 0;
            net.startFlow(resources, 1.5, bytes,
                          [&, leader, wave] {
                              completed++;
                              if (leader)
                                  burst(wave + 1);
                          });
        }
    };
    burst(0);
    events.run();
    EXPECT_EQ(completed, 36);
    EXPECT_NEAR(net.deliveredBytes(), total, 1e-2);
    for (ResourceId r = 0; r < topo.numResources(); r++)
        EXPECT_NEAR(net.resourceBytes(r), expected[r], 1e-2);
    EXPECT_EQ(net.activeFlows(), 0);
}

TEST(FlowNetwork, ResourcesLeftIdleStayClean)
{
    // A resource whose flows all finish must drop out of the touched
    // set and come back correctly when used again later.
    Topology topo = tinyFabric(10.0);
    EventQueue events;
    FlowNetwork net(topo, events);
    auto route01 = topo.route(0, 1).resources;
    auto route10 = topo.route(1, 0).resources;
    TimeNs second_done = -1;
    net.startFlow(route01, 100.0, 1000.0, [&] {
        // Re-use the reverse direction after the fabric went idle.
        net.startFlow(route10, 100.0, 1000.0,
                      [&] { second_done = events.now(); });
    });
    events.run();
    // Each leg runs alone at the 10 GB/s resource cap: 100ns each.
    EXPECT_NEAR(static_cast<double>(second_done), 200.0, 4.0);
    EXPECT_NEAR(net.deliveredBytes(), 2000.0, 1e-2);
}

} // namespace
} // namespace mscclang
