/**
 * @file
 * Tests for the machine models: NDv4, DGX2, DGX-1 connectivity, NIC
 * mapping, resource registration and route validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "topology/topology.h"

namespace mscclang {
namespace {

TEST(Topology, Ndv4Shape)
{
    Topology topo = makeNdv4(2);
    EXPECT_EQ(topo.numNodes(), 2);
    EXPECT_EQ(topo.gpusPerNode(), 8);
    EXPECT_EQ(topo.numRanks(), 16);
    EXPECT_EQ(topo.nodeOf(11), 1);
    EXPECT_EQ(topo.localOf(11), 3);
    EXPECT_EQ(topo.rankOf(1, 3), 11);
}

TEST(Topology, LinkTypesByLocality)
{
    Topology topo = makeNdv4(2);
    EXPECT_EQ(topo.linkType(0, 0), LinkType::Loopback);
    EXPECT_EQ(topo.linkType(0, 7), LinkType::NvLink);
    EXPECT_EQ(topo.linkType(0, 8), LinkType::InfiniBand);
    EXPECT_EQ(topo.linkType(15, 1), LinkType::InfiniBand);
}

TEST(Topology, Ndv4OneNicPerGpu)
{
    // Different local GPUs must use different NIC resources; the
    // same local index on both ends shares nothing but its own NICs.
    Topology topo = makeNdv4(2);
    const Route &a = topo.route(0, 8);
    const Route &b = topo.route(1, 9);
    ASSERT_EQ(a.resources.size(), 2u);
    ASSERT_EQ(b.resources.size(), 2u);
    EXPECT_NE(a.resources[0], b.resources[0]); // distinct send NICs
    EXPECT_NE(a.resources[1], b.resources[1]); // distinct recv NICs
}

TEST(Topology, Dgx2SharesNicPerGpuPair)
{
    Topology topo = makeDgx2(2);
    EXPECT_EQ(topo.gpusPerNode(), 16);
    const Route &a = topo.route(0, 16); // local 0 -> NIC 0
    const Route &b = topo.route(1, 17); // local 1 -> NIC 0 (shared!)
    const Route &c = topo.route(2, 18); // local 2 -> NIC 1
    EXPECT_EQ(a.resources[0], b.resources[0]);
    EXPECT_NE(a.resources[0], c.resources[0]);
}

TEST(Topology, Dgx1AdjacencyIsHybridCubeMesh)
{
    Topology dgx1 = makeDgx1();
    // Each V100 has exactly 4 NVLink neighbors.
    for (int r = 0; r < 8; r++) {
        int neighbors = 0;
        for (int q = 0; q < 8; q++) {
            if (q != r && dgx1.connected(r, q))
                neighbors++;
        }
        EXPECT_EQ(neighbors, 4) << "gpu " << r;
    }
    // Known non-edges of the cube-mesh.
    EXPECT_FALSE(dgx1.connected(0, 5));
    EXPECT_FALSE(dgx1.connected(0, 6));
    EXPECT_FALSE(dgx1.connected(0, 7));
    EXPECT_TRUE(dgx1.connected(0, 3));
    // Connectivity is symmetric.
    for (int r = 0; r < 8; r++) {
        for (int q = 0; q < 8; q++)
            EXPECT_EQ(dgx1.connected(r, q), dgx1.connected(q, r));
    }
}

TEST(Topology, Dgx1DoubleLinksHaveDoubleCapacity)
{
    Topology dgx1 = makeDgx1();
    double cap01 =
        dgx1.resourceCapacityGBps(dgx1.route(0, 1).resources[0]);
    double cap03 =
        dgx1.resourceCapacityGBps(dgx1.route(0, 3).resources[0]);
    EXPECT_DOUBLE_EQ(cap01, 25.0);  // single NVLink
    EXPECT_DOUBLE_EQ(cap03, 50.0);  // double NVLink
}

TEST(Topology, UnconnectedRouteThrows)
{
    Topology dgx1 = makeDgx1();
    EXPECT_THROW(dgx1.route(0, 7), Error);
    EXPECT_FALSE(dgx1.connected(0, 99));
}

TEST(Topology, ResourceValidation)
{
    Topology topo = makeGeneric(1, 2);
    EXPECT_THROW(topo.addResource("bad", 0.0), Error);
    EXPECT_THROW(topo.resourceCapacityGBps(-1), Error);
    EXPECT_THROW(topo.resourceName(9999), Error);
    Route route;
    route.resources = { 123456 };
    EXPECT_THROW(topo.setRoute(0, 1, route), Error);
    EXPECT_THROW(Topology("x", 0, 1, MachineParams{}), Error);
}

TEST(Topology, GenerationParametersDiffer)
{
    Topology a100 = makeNdv4(1);
    Topology v100 = makeDgx2(1);
    EXPECT_GT(a100.params().nvlinkGpuBwGBps,
              v100.params().nvlinkGpuBwGBps);
    EXPECT_GT(a100.params().tbNvlinkBwGBps,
              v100.params().tbNvlinkBwGBps);
    EXPECT_GT(v100.params().protocolAlphaScale,
              a100.params().protocolAlphaScale);
}

TEST(Topology, EveryResourceIsNamed)
{
    Topology topo = makeNdv4(2);
    for (int r = 0; r < topo.numResources(); r++)
        EXPECT_FALSE(topo.resourceName(r).empty());
}

TEST(Topology, RailMetadataMatchesNicAssignment)
{
    Topology ndv4 = makeNdv4(2);
    EXPECT_EQ(ndv4.variant(), TopologyVariant::Flat);
    EXPECT_EQ(ndv4.numRails(), 8);
    EXPECT_EQ(ndv4.railOf(3), 3);
    EXPECT_EQ(ndv4.railOf(11), 3); // same local GPU, other node

    Topology dgx2 = makeDgx2(2);
    EXPECT_EQ(dgx2.numRails(), 8);
    EXPECT_EQ(dgx2.railOf(0), 0);
    EXPECT_EQ(dgx2.railOf(1), 0); // GPU pair shares a NIC
    EXPECT_EQ(dgx2.railOf(2), 1);

    Topology dgx1 = makeDgx1();
    EXPECT_EQ(dgx1.numRails(), 1);
    EXPECT_EQ(dgx1.railOf(5), 0);
    EXPECT_THROW(dgx1.railOf(99), Error);
}

TEST(Topology, RailVariantPenalizesCrossRailRoutes)
{
    Topology flat = makeNdv4(2);
    Topology rail = makeNdv4(2, TopologyVariant::Rail);
    EXPECT_EQ(rail.variant(), TopologyVariant::Rail);
    EXPECT_EQ(rail.name(), "NDv4-rail");

    // Same-rail cross-node traffic is single-hop: two NIC endpoints,
    // same latency as the flat fabric.
    const Route &same = rail.route(0, 8); // local 0 -> local 0
    ASSERT_EQ(same.resources.size(), 2u);
    EXPECT_DOUBLE_EQ(same.extraLatencyUs,
                     flat.route(0, 8).extraLatencyUs);

    // Cross-rail traffic crosses the shared spine and pays a hop.
    const Route &cross = rail.route(0, 9); // local 0 -> local 1
    ASSERT_EQ(cross.resources.size(), 3u);
    EXPECT_EQ(rail.resourceName(cross.resources[2]), "cross-rail-spine");
    EXPECT_GT(cross.extraLatencyUs, same.extraLatencyUs);

    // Every cross-rail pair shares the one spine resource.
    EXPECT_EQ(rail.route(1, 10).resources[2], cross.resources[2]);

    // Intra-node routes are untouched by the variant.
    EXPECT_EQ(rail.route(0, 1).resources.size(),
              flat.route(0, 1).resources.size());
}

TEST(Topology, FatTreeUplinksAggregatePerNode)
{
    Topology fat = makeGeneric(3, 4, MachineParams{},
                               TopologyVariant::FatTree);
    EXPECT_EQ(fat.variant(), TopologyVariant::FatTree);
    EXPECT_EQ(fat.name(), "Generic-fattree");

    // Every cross-node route consumes its source node's uplink-out
    // and destination node's uplink-in, after its two NICs.
    const Route &a = fat.route(0, 5);  // node 0 -> node 1
    const Route &b = fat.route(2, 9);  // node 0 -> node 2
    ASSERT_EQ(a.resources.size(), 4u);
    ASSERT_EQ(b.resources.size(), 4u);
    EXPECT_EQ(fat.resourceName(a.resources[2]), "uplink-out[0]");
    EXPECT_EQ(fat.resourceName(a.resources[3]), "uplink-in[1]");
    EXPECT_EQ(a.resources[2], b.resources[2]); // shared per-node uplink
    EXPECT_NE(a.resources[3], b.resources[3]);

    // 2:1 oversubscription: the uplink carries half the node's
    // aggregate NIC bandwidth.
    double nic = fat.resourceCapacityGBps(a.resources[0]);
    double uplink = fat.resourceCapacityGBps(a.resources[2]);
    EXPECT_DOUBLE_EQ(uplink, nic * 4 / 2.0);

    // The uplink-out fault domain is every link leaving the node.
    std::vector<Link> links = fat.linksUsingResource(a.resources[2]);
    EXPECT_EQ(links.size(), 4u * 8u); // 4 local GPUs x 8 remote ranks
}

TEST(Topology, ParseTopologyVariants)
{
    Topology rail = parseTopology("ndv4:4:8:rail");
    EXPECT_EQ(rail.numNodes(), 4);
    EXPECT_EQ(rail.gpusPerNode(), 8);
    EXPECT_EQ(rail.variant(), TopologyVariant::Rail);

    Topology fat = parseTopology("generic:2:4:fattree");
    EXPECT_EQ(fat.numNodes(), 2);
    EXPECT_EQ(fat.gpusPerNode(), 4);
    EXPECT_EQ(fat.variant(), TopologyVariant::FatTree);

    Topology dgx2 = parseTopology("dgx2:2:rail");
    EXPECT_EQ(dgx2.gpusPerNode(), 16);
    EXPECT_EQ(dgx2.variant(), TopologyVariant::Rail);

    // Explicit flat is accepted and identical to the default.
    EXPECT_EQ(parseTopology("ndv4:2:flat").name(),
              parseTopology("ndv4:2").name());

    // Fixed-shape machines reject a foreign GPU count; single-node
    // machines reject variants; junk is still junk.
    EXPECT_THROW(parseTopology("ndv4:4:16:rail"), Error);
    EXPECT_THROW(parseTopology("dgx1:rail"), Error);
    EXPECT_THROW(parseTopology("ndv4:2:mesh"), Error);
}

} // namespace
} // namespace mscclang
