/**
 * @file
 * Tests for the machine models: NDv4, DGX2, DGX-1 connectivity, NIC
 * mapping, resource registration and route validation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "topology/topology.h"

namespace mscclang {
namespace {

TEST(Topology, Ndv4Shape)
{
    Topology topo = makeNdv4(2);
    EXPECT_EQ(topo.numNodes(), 2);
    EXPECT_EQ(topo.gpusPerNode(), 8);
    EXPECT_EQ(topo.numRanks(), 16);
    EXPECT_EQ(topo.nodeOf(11), 1);
    EXPECT_EQ(topo.localOf(11), 3);
    EXPECT_EQ(topo.rankOf(1, 3), 11);
}

TEST(Topology, LinkTypesByLocality)
{
    Topology topo = makeNdv4(2);
    EXPECT_EQ(topo.linkType(0, 0), LinkType::Loopback);
    EXPECT_EQ(topo.linkType(0, 7), LinkType::NvLink);
    EXPECT_EQ(topo.linkType(0, 8), LinkType::InfiniBand);
    EXPECT_EQ(topo.linkType(15, 1), LinkType::InfiniBand);
}

TEST(Topology, Ndv4OneNicPerGpu)
{
    // Different local GPUs must use different NIC resources; the
    // same local index on both ends shares nothing but its own NICs.
    Topology topo = makeNdv4(2);
    const Route &a = topo.route(0, 8);
    const Route &b = topo.route(1, 9);
    ASSERT_EQ(a.resources.size(), 2u);
    ASSERT_EQ(b.resources.size(), 2u);
    EXPECT_NE(a.resources[0], b.resources[0]); // distinct send NICs
    EXPECT_NE(a.resources[1], b.resources[1]); // distinct recv NICs
}

TEST(Topology, Dgx2SharesNicPerGpuPair)
{
    Topology topo = makeDgx2(2);
    EXPECT_EQ(topo.gpusPerNode(), 16);
    const Route &a = topo.route(0, 16); // local 0 -> NIC 0
    const Route &b = topo.route(1, 17); // local 1 -> NIC 0 (shared!)
    const Route &c = topo.route(2, 18); // local 2 -> NIC 1
    EXPECT_EQ(a.resources[0], b.resources[0]);
    EXPECT_NE(a.resources[0], c.resources[0]);
}

TEST(Topology, Dgx1AdjacencyIsHybridCubeMesh)
{
    Topology dgx1 = makeDgx1();
    // Each V100 has exactly 4 NVLink neighbors.
    for (int r = 0; r < 8; r++) {
        int neighbors = 0;
        for (int q = 0; q < 8; q++) {
            if (q != r && dgx1.connected(r, q))
                neighbors++;
        }
        EXPECT_EQ(neighbors, 4) << "gpu " << r;
    }
    // Known non-edges of the cube-mesh.
    EXPECT_FALSE(dgx1.connected(0, 5));
    EXPECT_FALSE(dgx1.connected(0, 6));
    EXPECT_FALSE(dgx1.connected(0, 7));
    EXPECT_TRUE(dgx1.connected(0, 3));
    // Connectivity is symmetric.
    for (int r = 0; r < 8; r++) {
        for (int q = 0; q < 8; q++)
            EXPECT_EQ(dgx1.connected(r, q), dgx1.connected(q, r));
    }
}

TEST(Topology, Dgx1DoubleLinksHaveDoubleCapacity)
{
    Topology dgx1 = makeDgx1();
    double cap01 =
        dgx1.resourceCapacityGBps(dgx1.route(0, 1).resources[0]);
    double cap03 =
        dgx1.resourceCapacityGBps(dgx1.route(0, 3).resources[0]);
    EXPECT_DOUBLE_EQ(cap01, 25.0);  // single NVLink
    EXPECT_DOUBLE_EQ(cap03, 50.0);  // double NVLink
}

TEST(Topology, UnconnectedRouteThrows)
{
    Topology dgx1 = makeDgx1();
    EXPECT_THROW(dgx1.route(0, 7), Error);
    EXPECT_FALSE(dgx1.connected(0, 99));
}

TEST(Topology, ResourceValidation)
{
    Topology topo = makeGeneric(1, 2);
    EXPECT_THROW(topo.addResource("bad", 0.0), Error);
    EXPECT_THROW(topo.resourceCapacityGBps(-1), Error);
    EXPECT_THROW(topo.resourceName(9999), Error);
    Route route;
    route.resources = { 123456 };
    EXPECT_THROW(topo.setRoute(0, 1, route), Error);
    EXPECT_THROW(Topology("x", 0, 1, MachineParams{}), Error);
}

TEST(Topology, GenerationParametersDiffer)
{
    Topology a100 = makeNdv4(1);
    Topology v100 = makeDgx2(1);
    EXPECT_GT(a100.params().nvlinkGpuBwGBps,
              v100.params().nvlinkGpuBwGBps);
    EXPECT_GT(a100.params().tbNvlinkBwGBps,
              v100.params().tbNvlinkBwGBps);
    EXPECT_GT(v100.params().protocolAlphaScale,
              a100.params().protocolAlphaScale);
}

TEST(Topology, EveryResourceIsNamed)
{
    Topology topo = makeNdv4(2);
    for (int r = 0; r < topo.numResources(); r++)
        EXPECT_FALSE(topo.resourceName(r).empty());
}

} // namespace
} // namespace mscclang
