/**
 * @file
 * Functional (data mode) integration tests: every collective program
 * is compiled and executed end to end on simulated machines with real
 * float buffers, and the output is compared against the
 * postcondition-derived oracle.
 */

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "test_util.h"

namespace mscclang {
namespace {

using testing::runAndCheck;

TEST(RuntimeFunctional, RingAllReduceSingleChannel)
{
    Topology topo = makeGeneric(1, 4);
    auto prog = makeRingAllReduce(4, 1, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, RingAllReduceMultiChannel)
{
    Topology topo = makeGeneric(1, 8);
    auto prog = makeRingAllReduce(8, 4, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 8 * 1024), "");
}

TEST(RuntimeFunctional, RingAllReduceWithInstances)
{
    Topology topo = makeGeneric(1, 4);
    AlgoConfig config;
    config.instances = 2;
    auto prog = makeRingAllReduce(4, 2, config);
    EXPECT_EQ(runAndCheck(topo, *prog, 16 * 1024), "");
}

TEST(RuntimeFunctional, RingAllReduceLLProtocol)
{
    Topology topo = makeGeneric(1, 4);
    AlgoConfig config;
    config.protocol = Protocol::LL;
    auto prog = makeRingAllReduce(4, 1, config);
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, AllPairsAllReduce)
{
    Topology topo = makeGeneric(1, 8);
    auto prog = makeAllPairsAllReduce(8, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 8 * 1024), "");
}

TEST(RuntimeFunctional, HierarchicalAllReduce)
{
    Topology topo = makeGeneric(2, 3);
    auto prog = makeHierarchicalAllReduce(2, 3, 2, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 6 * 1024), "");
}

TEST(RuntimeFunctional, HierarchicalAllReduceLarger)
{
    Topology topo = makeNdv4(2);
    auto prog = makeHierarchicalAllReduce(2, 8, 2, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 16 * 4096), "");
}

TEST(RuntimeFunctional, TwoStepAllToAll)
{
    Topology topo = makeGeneric(2, 2);
    auto prog = makeTwoStepAllToAll(2, 2, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, TwoStepAllToAllThreeNodes)
{
    Topology topo = makeGeneric(3, 4);
    auto prog = makeTwoStepAllToAll(3, 4, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 12 * 1024), "");
}

TEST(RuntimeFunctional, NaiveAllToAll)
{
    Topology topo = makeGeneric(2, 2);
    auto prog = makeNaiveAllToAll(4, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, AllToNext)
{
    Topology topo = makeGeneric(3, 4);
    auto prog = makeAllToNext(3, 4, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, AllToNextWithInstances)
{
    Topology topo = makeGeneric(2, 4);
    AlgoConfig config;
    config.instances = 4;
    auto prog = makeAllToNext(2, 4, config);
    EXPECT_EQ(runAndCheck(topo, *prog, 64 * 1024), "");
}

TEST(RuntimeFunctional, NaiveAllToNext)
{
    Topology topo = makeGeneric(2, 3);
    auto prog = makeNaiveAllToNext(2, 3, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 12 * 1024), "");
}

TEST(RuntimeFunctional, RingAllGather)
{
    Topology topo = makeGeneric(1, 6);
    auto prog = makeRingAllGather(6, 2, AlgoConfig{});
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024), "");
}

TEST(RuntimeFunctional, Sccl122AllGatherOnDgx1)
{
    Topology dgx1 = makeDgx1();
    auto prog = makeSccl122AllGather(dgx1, AlgoConfig{});
    CompileOptions copts;
    copts.topology = &dgx1;
    EXPECT_EQ(runAndCheck(dgx1, *prog, 8 * 1024, copts), "");
}

TEST(RuntimeFunctional, FusionOffMatchesOracleToo)
{
    Topology topo = makeGeneric(1, 4);
    auto prog = makeRingAllReduce(4, 1, AlgoConfig{});
    CompileOptions copts;
    copts.fuse = false;
    EXPECT_EQ(runAndCheck(topo, *prog, 4 * 1024, copts), "");
}

TEST(RuntimeFunctional, LargeBufferMultipleTiles)
{
    Topology topo = makeGeneric(1, 4);
    AlgoConfig config;
    config.protocol = Protocol::LL; // 32KB slots -> several tiles
    auto prog = makeRingAllReduce(4, 1, config);
    EXPECT_EQ(runAndCheck(topo, *prog, 1 << 20), "");
}

} // namespace
} // namespace mscclang
