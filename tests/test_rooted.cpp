/**
 * @file
 * Tests for the rooted collectives (Reduce, Gather, Scatter):
 * postcondition definitions, algorithms across rank counts and
 * roots, and oracle-checked execution.
 */

#include <gtest/gtest.h>

#include "collectives/rooted.h"
#include "common/error.h"
#include "test_util.h"

namespace mscclang {
namespace {

using testing::runAndCheck;

TEST(Rooted, ReducePostcondition)
{
    ReduceCollective coll(4, 2, 1);
    EXPECT_FALSE(coll.expectedOutput(0, 0).has_value());
    auto at_root = coll.expectedOutput(1, 1);
    ASSERT_TRUE(at_root.has_value());
    EXPECT_EQ(at_root->parts().size(), 4u);
    EXPECT_THROW(ReduceCollective(4, 1, 9), Error);
}

TEST(Rooted, GatherAndScatterPostconditions)
{
    GatherCollective gather(3, 2, 2);
    EXPECT_FALSE(gather.expectedOutput(0, 0).has_value());
    EXPECT_EQ(*gather.expectedOutput(2, 3), ChunkValue::input(1, 1));
    EXPECT_EQ(gather.outputChunkCount(0), 6);

    ScatterCollective scatter(3, 2, 0);
    EXPECT_EQ(*scatter.expectedOutput(2, 1), ChunkValue::input(0, 5));
    EXPECT_EQ(scatter.outputChunkCount(1), 2);
    EXPECT_DOUBLE_EQ(scatter.outputScale(), 1.0 / 3.0);
}

TEST(Rooted, BinomialReduceAcrossShapesAndRoots)
{
    for (int ranks : { 2, 3, 5, 8 }) {
        for (Rank root : { 0, ranks - 1 }) {
            Topology topo = makeGeneric(1, ranks);
            auto prog = makeBinomialReduce(ranks, root, {});
            prog->checkPostcondition();
            EXPECT_EQ(runAndCheck(topo, *prog, 1024), "")
                << ranks << " ranks, root " << root;
        }
    }
}

TEST(Rooted, BinomialReduceHasLogCriticalPath)
{
    auto prog = makeBinomialReduce(8, 0, {});
    Compiled out = compileProgram(*prog);
    // stage copy + 3 reduction rounds + final copy
    EXPECT_LE(out.stats.chunkCriticalPath, 6);
}

TEST(Rooted, DirectGather)
{
    for (Rank root : { 0, 3 }) {
        Topology topo = makeGeneric(2, 3);
        auto prog = makeDirectGather(6, root, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 1024), "")
            << "root " << root;
    }
}

TEST(Rooted, DirectScatter)
{
    for (Rank root : { 0, 4 }) {
        Topology topo = makeGeneric(2, 3);
        auto prog = makeDirectScatter(6, root, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 6 * 512 * 4), "")
            << "root " << root;
    }
}

TEST(Rooted, GatherThenScatterRoundTrips)
{
    // Scatter is gather's inverse: running gather(root 0) then
    // scatter(root 0) over the gathered buffer reproduces the inputs.
    // Here we simply check both run clean on the same machine.
    Topology topo = makeGeneric(1, 4);
    EXPECT_EQ(runAndCheck(topo, *makeDirectGather(4, 0, {}), 2048),
              "");
    EXPECT_EQ(runAndCheck(topo, *makeDirectScatter(4, 0, {}),
                          4 * 512 * 4),
              "");
}

} // namespace
} // namespace mscclang
