/**
 * @file
 * Shared helpers for the test suite: compile + functional-execute a
 * program on a topology and compare its output buffers against the
 * postcondition-derived oracle.
 */

#ifndef MSCCLANG_TESTS_TEST_UTIL_H_
#define MSCCLANG_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "compiler/compiler.h"
#include "dsl/program.h"
#include "runtime/communicator.h"
#include "runtime/reference.h"
#include "topology/topology.h"

namespace mscclang::testing {

/** Deterministically fills every rank's input buffer. */
inline std::vector<std::vector<float>>
fillInputs(Communicator &comm, const IrProgram &ir,
           std::uint64_t bytes_per_rank, std::uint64_t seed = 7)
{
    comm.store().configure(ir, bytes_per_rank);
    Rng rng(seed);
    std::vector<std::vector<float>> inputs(ir.numRanks);
    for (int r = 0; r < ir.numRanks; r++) {
        std::vector<float> &buf = comm.store().input(r);
        for (float &v : buf)
            v = rng.nextSignedFloat();
        inputs[r] = buf;
    }
    return inputs;
}

/**
 * Compiles @p program, runs it in data mode on @p topology with
 * @p bytes_per_rank input bytes, and returns the first oracle
 * mismatch (empty string on success).
 */
inline std::string
runAndCheck(const Topology &topology, const Program &program,
            std::uint64_t bytes_per_rank,
            const CompileOptions &copts = {})
{
    Compiled compiled = compileProgram(program, copts);
    Communicator comm(topology);
    std::vector<std::vector<float>> inputs =
        fillInputs(comm, compiled.ir, bytes_per_rank);

    RunOptions run;
    run.bytes = bytes_per_rank;
    run.dataMode = true;
    comm.runProgram(compiled.ir, run);

    std::vector<std::vector<float>> outputs(compiled.ir.numRanks);
    for (int r = 0; r < compiled.ir.numRanks; r++) {
        outputs[r] = comm.store().buffer(r, BufferKind::Output,
                                         compiled.ir.inPlace);
    }
    return compareToReference(program.collective(), inputs, outputs,
                              program.options().reduceOp);
}

/** Runs one or more pre-compiled kernels and checks the oracle. */
inline std::string
runIrsAndCheck(const Topology &topology,
               const std::vector<const IrProgram *> &irs,
               const Collective &collective,
               std::uint64_t bytes_per_rank)
{
    Communicator comm(topology);
    std::vector<std::vector<float>> inputs =
        fillInputs(comm, *irs.front(), bytes_per_rank);
    for (const IrProgram *ir : irs)
        comm.store().configure(*ir, bytes_per_rank);

    RunOptions run;
    run.bytes = bytes_per_rank;
    run.dataMode = true;
    comm.runComposed(irs, run);

    const IrProgram &last = *irs.back();
    std::vector<std::vector<float>> outputs(last.numRanks);
    for (int r = 0; r < last.numRanks; r++) {
        outputs[r] = comm.store().buffer(r, BufferKind::Output,
                                         last.inPlace);
    }
    return compareToReference(collective, inputs, outputs,
                              last.reduceOp);
}

} // namespace mscclang::testing

#endif // MSCCLANG_TESTS_TEST_UTIL_H_
