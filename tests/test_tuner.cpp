/**
 * @file
 * Tests for the autotuner, the chrome tracing export, and the
 * topology spec parser — the tooling layer around the runtime.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "runtime/tuner.h"

namespace mscclang {
namespace {

TEST(Tuner, PicksLatencyAlgorithmSmallBandwidthLarge)
{
    Topology topo = makeNdv4(1);
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    ll.instances = 4;
    AlgoConfig simple;
    simple.protocol = Protocol::Simple;
    simple.instances = 8;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(8, ll)).ir); // latency
    candidates.push_back(
        compileProgram(*makeRingAllReduce(8, 1, simple)).ir); // bw

    TuneOptions options;
    options.fromBytes = 1 << 10;
    options.toBytes = 64 << 20;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, options);

    ASSERT_GE(windows.size(), 2u);
    EXPECT_EQ(windows.front().candidate, 0); // All Pairs at small
    EXPECT_EQ(windows.back().candidate, 1);  // Ring at large
    // Windows tile the space contiguously from zero to +inf.
    EXPECT_EQ(windows.front().minBytes, 0u);
    for (size_t i = 1; i < windows.size(); i++)
        EXPECT_EQ(windows[i].minBytes, windows[i - 1].maxBytes + 1);
    EXPECT_EQ(windows.back().maxBytes,
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Tuner, RegisteredWindowsDriveSelection)
{
    Topology topo = makeNdv4(1);
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    ll.instances = 4;
    AlgoConfig simple;
    simple.protocol = Protocol::Simple;
    simple.instances = 8;
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeAllPairsAllReduce(8, ll)).ir);
    candidates.back().name = "allpairs";
    candidates.push_back(
        compileProgram(*makeRingAllReduce(8, 1, simple)).ir);
    candidates.back().name = "ring";

    std::vector<TunedWindow> windows = tuneWindows(topo, candidates);
    Communicator comm(topo);
    registerTuned(comm, candidates, windows);

    RunOptions small;
    small.bytes = 1 << 10;
    EXPECT_EQ(comm.run("allreduce", small).algorithm, "allpairs");
    RunOptions big;
    big.bytes = 64 << 20;
    EXPECT_EQ(comm.run("allreduce", big).algorithm, "ring");
}

TEST(Tuner, DegenerateRangeYieldsOneWindowSet)
{
    Topology topo = makeGeneric(1, 4);
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(4, 1, {})).ir);

    // fromBytes == toBytes: a single sweep point, a single window
    // covering the whole size axis.
    TuneOptions options;
    options.fromBytes = 1 << 20;
    options.toBytes = 1 << 20;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, options);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].minBytes, 0u);
    EXPECT_EQ(windows[0].maxBytes,
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(windows[0].candidate, 0);
    EXPECT_GT(windows[0].timeUs, 0.0);
}

TEST(Tuner, NonPowerOfTwoEndpointIsMeasured)
{
    Topology topo = makeGeneric(1, 4);
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(4, 1, {})).ir);

    // toBytes is not a doubling point of fromBytes; it must still be
    // a measured sweep point, so the windows tile contiguously with
    // no gap between the last doubling point and toBytes.
    TuneOptions options;
    options.fromBytes = 1 << 10;
    options.toBytes = (1 << 14) + 512;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, options);
    ASSERT_FALSE(windows.empty());
    EXPECT_EQ(windows.front().minBytes, 0u);
    for (size_t i = 1; i < windows.size(); i++)
        EXPECT_EQ(windows[i].minBytes, windows[i - 1].maxBytes + 1);
    EXPECT_EQ(windows.back().maxBytes,
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Tuner, OddSinglePointRange)
{
    // A non-power-of-two degenerate range: one measured point, full
    // tiling, no doubling arithmetic involved. (The top-bit overflow
    // clamp of the shared sweep loop is unit-tested directly in
    // Strings.SizeSweepBoundaries — sizes that large cannot be
    // simulated without the timeline itself overflowing.)
    Topology topo = makeGeneric(1, 4);
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(4, 1, {})).ir);
    TuneOptions options;
    options.fromBytes = (1 << 20) + 12288;
    options.toBytes = options.fromBytes;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, options);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].minBytes, 0u);
    EXPECT_EQ(windows[0].maxBytes,
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Tuner, RejectsBadInput)
{
    Topology topo = makeNdv4(1);
    EXPECT_THROW(tuneWindows(topo, {}), RuntimeError);
    std::vector<IrProgram> candidates;
    candidates.push_back(
        compileProgram(*makeRingAllReduce(8, 1, {})).ir);
    TuneOptions bad;
    bad.fromBytes = 100;
    bad.toBytes = 10;
    EXPECT_THROW(tuneWindows(topo, candidates, bad), RuntimeError);
}

TEST(Tuner, SweepSizesBoundaries)
{
    // from == to: the single point.
    EXPECT_EQ(tuneSweepSizes(1 << 20, 1 << 20),
              (std::vector<std::uint64_t>{ 1 << 20 }));
    // Doubling with a non-power-of-two endpoint: the endpoint is
    // always the measured last point.
    std::vector<std::uint64_t> sizes = tuneSweepSizes(1024, 5000);
    EXPECT_EQ(sizes,
              (std::vector<std::uint64_t>{ 1024, 2048, 4096, 5000 }));
    // Bad ranges throw instead of producing an empty sweep.
    EXPECT_THROW(tuneSweepSizes(0, 1024), RuntimeError);
    EXPECT_THROW(tuneSweepSizes(2048, 1024), RuntimeError);
}

TEST(Tuner, MergeWindowsTieGoesToLowestIndex)
{
    // Exact ties at every point: candidate 0 wins everything, and
    // duplicate winners collapse into the single covering window.
    std::vector<std::uint64_t> sizes{ 1024, 2048, 4096 };
    std::vector<std::vector<double>> times{ { 5, 6, 7 },
                                            { 5, 6, 7 },
                                            { 5, 6, 7 } };
    std::vector<TunedWindow> windows = mergeTunedWindows(sizes, times);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_EQ(windows[0].candidate, 0);
    EXPECT_EQ(windows[0].minBytes, 0u);
    EXPECT_EQ(windows[0].maxBytes,
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Tuner, MergeWindowsCoalescesAdjacentSameWinner)
{
    // Candidate 1 wins the two middle points, candidate 0 the edges:
    // exactly three windows, the middle pair coalesced.
    std::vector<std::uint64_t> sizes{ 1024, 2048, 4096, 8192 };
    std::vector<std::vector<double>> times{ { 1, 9, 9, 1 },
                                            { 2, 3, 3, 2 } };
    std::vector<TunedWindow> windows = mergeTunedWindows(sizes, times);
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(windows[0].candidate, 0);
    EXPECT_EQ(windows[1].candidate, 1);
    EXPECT_EQ(windows[1].minBytes, 2048u);
    EXPECT_EQ(windows[1].maxBytes, 8191u);
    EXPECT_EQ(windows[2].candidate, 0);
    for (size_t i = 1; i < windows.size(); i++)
        EXPECT_EQ(windows[i].minBytes, windows[i - 1].maxBytes + 1);
}

TEST(Tuner, MergeWindowsSinglePointAndDegenerateInputs)
{
    // A single sweep point yields the single all-covering window.
    std::vector<TunedWindow> one =
        mergeTunedWindows({ 4096 }, { { 3.5 }, { 2.5 } });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].candidate, 1);
    EXPECT_EQ(one[0].minBytes, 0u);
    EXPECT_EQ(one[0].maxBytes,
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(one[0].timeUs, 2.5);

    // Empty sweep, empty candidate list, ragged matrix: all throw
    // rather than corrupting the window table.
    EXPECT_THROW(mergeTunedWindows({}, { { 1.0 } }), RuntimeError);
    EXPECT_THROW(mergeTunedWindows({ 1024 }, {}), RuntimeError);
    EXPECT_THROW(
        mergeTunedWindows({ 1024, 2048 }, { { 1.0, 2.0 }, { 1.0 } }),
        RuntimeError);
}

TEST(Tracing, EmitsValidTimeline)
{
    Topology topo = makeGeneric(1, 4);
    IrProgram ir = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    std::string path = ::testing::TempDir() + "mscclang_trace.json";
    ExecOptions options;
    options.bytesPerRank = 64 << 10;
    options.traceFile = path;
    runIr(topo, ir, options);

    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::ostringstream text;
    text << file.rdbuf();
    std::string json = text.str();
    EXPECT_EQ(json.front(), '[');
    // Fused ring instructions appear as slices with durations.
    EXPECT_NE(json.find("\"name\":\"rrcs\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
    // One slice per executed (tile, step): count events ~ instrs.
    size_t events = 0;
    for (size_t pos = json.find("\"name\""); pos != std::string::npos;
         pos = json.find("\"name\"", pos + 1)) {
        events++;
    }
    EXPECT_GE(events, 24u); // 4 ranks x 6 steps at least
    std::remove(path.c_str());
}

TEST(TopologySpec, ParsesKnownMachines)
{
    EXPECT_EQ(parseTopology("ndv4:2").numRanks(), 16);
    EXPECT_EQ(parseTopology("dgx2:1").numRanks(), 16);
    EXPECT_EQ(parseTopology("dgx1").numRanks(), 8);
    Topology generic = parseTopology("generic:3:5");
    EXPECT_EQ(generic.numNodes(), 3);
    EXPECT_EQ(generic.gpusPerNode(), 5);
}

TEST(TopologySpec, RejectsJunk)
{
    EXPECT_THROW(parseTopology("tpu:4"), Error);
    EXPECT_THROW(parseTopology("ndv4:x"), Error);
    EXPECT_THROW(parseTopology(""), Error);
}

} // namespace
} // namespace mscclang
