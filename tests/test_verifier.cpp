/**
 * @file
 * Failure injection for the static verifier: hand-built MSCCL-IR
 * with deadlocks, FIFO slot overflows, semantic errors and malformed
 * structure must be rejected with precise diagnostics, while correct
 * IR passes (paper §1's "automatically check ... before running").
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/verifier.h"
#include "dsl/collective.h"

namespace mscclang {
namespace {

/** Hand-built program skeleton over @p ranks with 1 chunk each. */
IrProgram
skeleton(int ranks, const char *collective = "allgather")
{
    IrProgram ir;
    ir.name = "handmade";
    ir.collective = collective;
    ir.numRanks = ranks;
    ir.protocol = Protocol::Simple;
    ir.gpus.resize(ranks);
    for (int r = 0; r < ranks; r++) {
        ir.gpus[r].rank = r;
        ir.gpus[r].inputChunks = 1;
        ir.gpus[r].outputChunks = ranks;
        ir.gpus[r].scratchChunks = 0;
    }
    return ir;
}

IrInstruction
instr(IrOp op, BufferKind src_buf, int src_off, BufferKind dst_buf,
      int dst_off)
{
    IrInstruction out;
    out.op = op;
    out.srcBuf = src_buf;
    out.srcOff = src_off;
    out.dstBuf = dst_buf;
    out.dstOff = dst_off;
    return out;
}

TEST(Verifier, AcceptsHandWrittenBroadcastPair)
{
    // Rank 0 sends its chunk to rank 1; both place their own copy.
    IrProgram ir = skeleton(2);
    IrThreadBlock tb0;
    tb0.id = 0;
    tb0.sendPeer = 1;
    tb0.steps.push_back(
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 0));
    tb0.steps.push_back(
        instr(IrOp::Send, BufferKind::Input, 0, BufferKind::Input, 0));
    ir.gpus[0].threadBlocks.push_back(tb0);

    IrThreadBlock tb1;
    tb1.id = 0;
    tb1.recvPeer = 0;
    tb1.steps.push_back(
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 1));
    tb1.steps.push_back(
        instr(IrOp::Recv, BufferKind::Output, 0, BufferKind::Output, 0));
    ir.gpus[1].threadBlocks.push_back(tb1);

    // Postcondition: this is rank-1-only gather, so use a custom
    // collective that only constrains what the IR provides.
    CustomCollective coll(
        "partial", 2, 1, false, 1, 2,
        [](Rank rank, int index) -> std::optional<ChunkValue> {
            if (rank == 1 || index == 0)
                return ChunkValue::input(index == 0 && rank == 1
                                             ? 0
                                             : rank,
                                         0);
            return std::nullopt;
        });
    verifyIr(ir, coll);
}

TEST(Verifier, DetectsWrongPostcondition)
{
    // The IR gathers nothing, but claims to be an AllGather.
    IrProgram ir = skeleton(2);
    AllGatherCollective coll(2, 1);
    EXPECT_THROW(verifyIr(ir, coll), VerificationError);
}

TEST(Verifier, DetectsCrossTbDependencyDeadlock)
{
    // Two thread blocks on one rank waiting on each other.
    IrProgram ir = skeleton(1);
    IrThreadBlock a, b;
    a.id = 0;
    b.id = 1;
    IrInstruction ia =
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 0);
    ia.deps.push_back(IrDep{ 1, 0 });
    ia.hasDep = true;
    IrInstruction ib =
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 0);
    ib.deps.push_back(IrDep{ 0, 0 });
    ib.hasDep = true;
    a.steps.push_back(ia);
    b.steps.push_back(ib);
    ir.gpus[0].threadBlocks.push_back(a);
    ir.gpus[0].threadBlocks.push_back(b);
    VerifyOptions options;
    options.checkPostcondition = false;
    try {
        verifyIr(ir, AllGatherCollective(1, 1), options);
        FAIL() << "deadlock not detected";
    } catch (const VerificationError &error) {
        EXPECT_NE(std::string(error.what()).find("deadlock"),
                  std::string::npos);
    }
}

TEST(Verifier, DetectsFifoSlotDeadlock)
{
    // Both ranks send 16 messages before receiving any; with 8 slots
    // the schedule wedges (the head-of-line pattern the slot-gating
    // scheduler exists to prevent).
    IrProgram ir = skeleton(2);
    for (int r = 0; r < 2; r++) {
        IrThreadBlock tb;
        tb.id = 0;
        tb.sendPeer = 1 - r;
        tb.recvPeer = 1 - r;
        for (int i = 0; i < 16; i++) {
            tb.steps.push_back(instr(IrOp::Send, BufferKind::Input, 0,
                                     BufferKind::Input, 0));
        }
        for (int i = 0; i < 16; i++) {
            tb.steps.push_back(instr(IrOp::Recv, BufferKind::Output,
                                     0, BufferKind::Output, 0));
        }
        ir.gpus[r].threadBlocks.push_back(tb);
    }
    VerifyOptions options;
    options.checkPostcondition = false;
    options.slots = 8;
    EXPECT_THROW(verifyIr(ir, AllGatherCollective(2, 1), options),
                 VerificationError);
    // The same schedule is fine with enough slots.
    options.slots = 16;
    verifyIr(ir, AllGatherCollective(2, 1), options);
}

TEST(Verifier, DetectsUninitializedRead)
{
    IrProgram ir = skeleton(1);
    IrThreadBlock tb;
    tb.id = 0;
    tb.steps.push_back(
        instr(IrOp::Copy, BufferKind::Output, 0, BufferKind::Output, 0));
    ir.gpus[0].threadBlocks.push_back(tb);
    VerifyOptions options;
    options.checkPostcondition = false;
    try {
        verifyIr(ir, AllGatherCollective(1, 1), options);
        FAIL() << "uninitialized read not detected";
    } catch (const VerificationError &error) {
        EXPECT_NE(std::string(error.what()).find("uninitialized"),
                  std::string::npos);
    }
}

TEST(Verifier, DetectsOutOfBoundsAccess)
{
    IrProgram ir = skeleton(1);
    IrThreadBlock tb;
    tb.id = 0;
    tb.steps.push_back(
        instr(IrOp::Copy, BufferKind::Input, 5, BufferKind::Output, 0));
    ir.gpus[0].threadBlocks.push_back(tb);
    VerifyOptions options;
    options.checkPostcondition = false;
    EXPECT_THROW(verifyIr(ir, AllGatherCollective(1, 1), options),
                 VerificationError);
}

TEST(Verifier, DetectsFifoShapeMismatch)
{
    // Sender ships 1 chunk, receiver expects 2: FIFO pairing breaks.
    IrProgram ir = skeleton(2);
    ir.gpus[0].inputChunks = 2;
    ir.gpus[1].inputChunks = 2;
    IrThreadBlock tb0;
    tb0.id = 0;
    tb0.sendPeer = 1;
    tb0.steps.push_back(
        instr(IrOp::Send, BufferKind::Input, 0, BufferKind::Input, 0));
    ir.gpus[0].threadBlocks.push_back(tb0);
    IrThreadBlock tb1;
    tb1.id = 0;
    tb1.recvPeer = 0;
    IrInstruction recv =
        instr(IrOp::Recv, BufferKind::Output, 0, BufferKind::Output, 0);
    recv.count = 2;
    tb1.steps.push_back(recv);
    ir.gpus[1].threadBlocks.push_back(tb1);
    VerifyOptions options;
    options.checkPostcondition = false;
    try {
        verifyIr(ir, AllGatherCollective(2, 1), options);
        FAIL() << "shape mismatch not detected";
    } catch (const VerificationError &error) {
        EXPECT_NE(std::string(error.what()).find("FIFO"),
                  std::string::npos);
    }
}

TEST(Verifier, DetectsSendWithoutPeer)
{
    IrProgram ir = skeleton(1);
    IrThreadBlock tb;
    tb.id = 0; // no sendPeer
    tb.steps.push_back(
        instr(IrOp::Send, BufferKind::Input, 0, BufferKind::Input, 0));
    ir.gpus[0].threadBlocks.push_back(tb);
    VerifyOptions options;
    options.checkPostcondition = false;
    EXPECT_THROW(verifyIr(ir, AllGatherCollective(1, 1), options),
                 VerificationError);
}

TEST(Verifier, DetectsUnknownDependencyTarget)
{
    IrProgram ir = skeleton(1);
    IrThreadBlock tb;
    tb.id = 0;
    IrInstruction bad =
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 0);
    bad.deps.push_back(IrDep{ 7, 0 });
    tb.steps.push_back(bad);
    ir.gpus[0].threadBlocks.push_back(tb);
    VerifyOptions options;
    options.checkPostcondition = false;
    EXPECT_THROW(verifyIr(ir, AllGatherCollective(1, 1), options),
                 VerificationError);
}

TEST(Verifier, TornChunkDetected)
{
    // Two parallel instances write halves of an output chunk with
    // DIFFERENT values; reading the whole chunk must report a torn
    // value (postcondition failure rather than silent acceptance).
    IrProgram ir = skeleton(1);
    ir.gpus[0].inputChunks = 2;
    ir.gpus[0].outputChunks = 1;
    IrThreadBlock tb;
    tb.id = 0;
    IrInstruction lo =
        instr(IrOp::Copy, BufferKind::Input, 0, BufferKind::Output, 0);
    lo.splitIdx = 0;
    lo.splitCount = 2;
    IrInstruction hi =
        instr(IrOp::Copy, BufferKind::Input, 1, BufferKind::Output, 0);
    hi.splitIdx = 1;
    hi.splitCount = 2;
    tb.steps.push_back(lo);
    tb.steps.push_back(hi);
    ir.gpus[0].threadBlocks.push_back(tb);

    CustomCollective coll(
        "torn", 1, 2, false, 2, 1,
        [](Rank, int) -> std::optional<ChunkValue> {
            return ChunkValue::input(0, 0);
        });
    EXPECT_THROW(verifyIr(ir, coll), VerificationError);
}

TEST(Verifier, ParallelInstancesComposeWhenConsistent)
{
    // Same as above but both halves carry the same source chunk:
    // the whole-chunk read sees one uniform value.
    IrProgram ir = skeleton(1);
    ir.gpus[0].outputChunks = 1;
    IrThreadBlock tb;
    tb.id = 0;
    for (int i = 0; i < 2; i++) {
        IrInstruction half = instr(IrOp::Copy, BufferKind::Input, 0,
                                   BufferKind::Output, 0);
        half.splitIdx = i;
        half.splitCount = 2;
        tb.steps.push_back(half);
    }
    ir.gpus[0].threadBlocks.push_back(tb);
    CustomCollective coll(
        "whole", 1, 1, false, 1, 1,
        [](Rank, int) -> std::optional<ChunkValue> {
            return ChunkValue::input(0, 0);
        });
    verifyIr(ir, coll);
}

TEST(Verifier, SlotOptionValidated)
{
    IrProgram ir = skeleton(1);
    VerifyOptions options;
    options.slots = 0;
    EXPECT_THROW(verifyIr(ir, AllGatherCollective(1, 1), options),
                 VerificationError);
}

} // namespace
} // namespace mscclang
