/**
 * @file
 * Property-based tests: for every combination of (machine shape,
 * protocol, parallelization, channels) the library's collectives
 * must (1) trace with a satisfied postcondition, (2) compile with
 * the static verifier accepting the IR, and (3) execute in data
 * mode to oracle-identical buffers. These are the paper's three
 * correctness layers checked against each other across the whole
 * configuration space.
 */

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "test_util.h"

namespace mscclang {
namespace {

struct Config
{
    int nodes;
    int gpus;
    Protocol proto;
    int instances;
    int channels; // ring distribution where applicable
};

std::string
configName(const ::testing::TestParamInfo<Config> &info)
{
    const Config &c = info.param;
    return strprintf("n%dg%d_%s_r%d_ch%d", c.nodes, c.gpus,
                     protocolName(c.proto), c.instances, c.channels);
}

std::vector<Config>
sweep()
{
    std::vector<Config> configs;
    for (Protocol proto :
         { Protocol::LL, Protocol::LL128, Protocol::Simple }) {
        for (int instances : { 1, 2, 3 }) {
            configs.push_back(Config{ 1, 4, proto, instances, 1 });
            configs.push_back(Config{ 1, 8, proto, instances, 4 });
            configs.push_back(Config{ 2, 4, proto, instances, 2 });
        }
    }
    configs.push_back(Config{ 3, 2, Protocol::Direct, 2, 2 });
    configs.push_back(Config{ 1, 16, Protocol::LL128, 4, 8 });
    return configs;
}

class CollectiveProperty : public ::testing::TestWithParam<Config>
{
  protected:
    Topology
    topology() const
    {
        const Config &c = GetParam();
        return makeGeneric(c.nodes, c.gpus);
    }

    AlgoConfig
    algo() const
    {
        const Config &c = GetParam();
        AlgoConfig config;
        config.protocol = c.proto;
        config.instances = c.instances;
        return config;
    }

    /** Bytes chosen so elements divide all chunk counts in play. */
    std::uint64_t
    bytes(int chunks) const
    {
        return static_cast<std::uint64_t>(chunks) * 512 *
            sizeof(float);
    }
};

TEST_P(CollectiveProperty, RingAllReduce)
{
    const Config &c = GetParam();
    Topology topo = topology();
    auto prog = makeRingAllReduce(topo.numRanks(), c.channels, algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog,
                                   bytes(topo.numRanks())),
              "");
}

TEST_P(CollectiveProperty, AllPairsAllReduce)
{
    Topology topo = topology();
    auto prog = makeAllPairsAllReduce(topo.numRanks(), algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog,
                                   bytes(topo.numRanks())),
              "");
}

TEST_P(CollectiveProperty, RingAllGather)
{
    const Config &c = GetParam();
    Topology topo = topology();
    auto prog = makeRingAllGather(topo.numRanks(), c.channels, algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog, bytes(1)), "");
}

TEST_P(CollectiveProperty, HierarchicalAllReduce)
{
    const Config &c = GetParam();
    if (c.nodes == 1 && c.gpus < 2)
        GTEST_SKIP();
    Topology topo = topology();
    auto prog = makeHierarchicalAllReduce(c.nodes, c.gpus,
                                          std::min(2, c.nodes), algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog,
                                   bytes(topo.numRanks())),
              "");
}

TEST_P(CollectiveProperty, TwoStepAllToAll)
{
    const Config &c = GetParam();
    Topology topo = topology();
    auto prog = makeTwoStepAllToAll(c.nodes, c.gpus, algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog,
                                   bytes(topo.numRanks())),
              "");
}

TEST_P(CollectiveProperty, NaiveAllToAll)
{
    Topology topo = topology();
    auto prog = makeNaiveAllToAll(topo.numRanks(), algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog,
                                   bytes(topo.numRanks())),
              "");
}

TEST_P(CollectiveProperty, AllToNext)
{
    const Config &c = GetParam();
    Topology topo = topology();
    auto prog = makeAllToNext(c.nodes, c.gpus, algo());
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog, bytes(c.gpus)), "");
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectiveProperty,
                         ::testing::ValuesIn(sweep()), configName);

// ------------------------------------------------------------------
// Size sweep property: the same compiled IR must stay correct at any
// buffer size (tiling/pipelining must not corrupt data).

class SizeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SizeProperty, RingAllReduceAcrossSizes)
{
    Topology topo = makeGeneric(1, 4);
    AlgoConfig config;
    config.protocol = Protocol::LL; // smallest slots: most tiles
    auto prog = makeRingAllReduce(4, 2, config);
    std::uint64_t bytes =
        static_cast<std::uint64_t>(GetParam()) * 4 * sizeof(float);
    EXPECT_EQ(testing::runAndCheck(topo, *prog, bytes), "");
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeProperty,
                         ::testing::Values(1, 7, 64, 1000, 4096,
                                           65536, 262144));

// ------------------------------------------------------------------
// Reduce-op property: every reduction operator survives the trip.

class ReduceOpProperty : public ::testing::TestWithParam<ReduceOp>
{
};

TEST_P(ReduceOpProperty, AllPairsWithEveryOperator)
{
    Topology topo = makeGeneric(1, 4);
    AlgoConfig config;
    config.reduceOp = GetParam();
    auto prog = makeAllPairsAllReduce(4, config);
    EXPECT_EQ(testing::runAndCheck(topo, *prog, 4 * 512 * 4), "");
}

INSTANTIATE_TEST_SUITE_P(Ops, ReduceOpProperty,
                         ::testing::Values(ReduceOp::Sum,
                                           ReduceOp::Prod,
                                           ReduceOp::Max,
                                           ReduceOp::Min),
                         [](const ::testing::TestParamInfo<ReduceOp>
                                &info) {
                             return reduceOpName(info.param);
                         });

} // namespace
} // namespace mscclang
