/**
 * @file
 * Unit tests for src/common: byte formatting/parsing, string
 * helpers, deterministic RNG and vocabulary types.
 */

#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/types.h"

namespace mscclang {
namespace {

TEST(Strings, FormatBytesExactPowers)
{
    EXPECT_EQ(formatBytes(0), "0B");
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(1024), "1KB");
    EXPECT_EQ(formatBytes(32 << 10), "32KB");
    EXPECT_EQ(formatBytes(1 << 20), "1MB");
    EXPECT_EQ(formatBytes(4ULL << 30), "4GB");
}

TEST(Strings, FormatBytesFractional)
{
    EXPECT_EQ(formatBytes(1536), "1.5KB");
    EXPECT_EQ(formatBytes((1 << 20) + (512 << 10)), "1.5MB");
}

TEST(Strings, ParseBytesUnits)
{
    EXPECT_EQ(parseBytes("64"), 64u);
    EXPECT_EQ(parseBytes("64B"), 64u);
    EXPECT_EQ(parseBytes("32KB"), 32u << 10);
    EXPECT_EQ(parseBytes("1MB"), 1u << 20);
    EXPECT_EQ(parseBytes("2GB"), 2ULL << 30);
    EXPECT_EQ(parseBytes("1TB"), 1ULL << 40);
    EXPECT_EQ(parseBytes("1.5KB"), 1536u);
}

TEST(Strings, ParseBytesRoundTripsFormat)
{
    for (std::uint64_t bytes : sizeSweep(1 << 10, 1ULL << 30))
        EXPECT_EQ(parseBytes(formatBytes(bytes)), bytes);
}

TEST(Strings, ParseBytesRejectsJunk)
{
    EXPECT_THROW(parseBytes(""), Error);
    EXPECT_THROW(parseBytes("abc"), Error);
    EXPECT_THROW(parseBytes("12XB"), Error);
    EXPECT_THROW(parseBytes("-5KB"), Error);
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto fields = splitString("a,,b", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(Strings, SizeSweepIsGeometric)
{
    auto sizes = sizeSweep(1 << 10, 8 << 10);
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 1u << 10);
    EXPECT_EQ(sizes[3], 8u << 10);
}

TEST(Strings, SizeSweepBoundaries)
{
    // Degenerate range: exactly one point.
    auto single = sizeSweep(1 << 20, 1 << 20);
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0], 1u << 20);

    // A start in the top bit range must clamp, not wrap the shift to
    // zero and loop forever.
    constexpr std::uint64_t kTop = 1ULL << 63;
    auto top = sizeSweep(kTop, std::numeric_limits<std::uint64_t>::max());
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0], kTop);

    // Non-power-of-two upper bound: the sweep stops at the last
    // doubling point inside the range.
    auto odd = sizeSweep(1 << 10, 3 << 10);
    ASSERT_EQ(odd.size(), 2u);
    EXPECT_EQ(odd.back(), 2u << 10);
}

TEST(Strings, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangesRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        std::int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        float f = rng.nextSignedFloat();
        EXPECT_GE(f, -1.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Types, Names)
{
    EXPECT_STREQ(bufferKindName(BufferKind::Input), "i");
    EXPECT_STREQ(bufferKindName(BufferKind::Output), "o");
    EXPECT_STREQ(bufferKindName(BufferKind::Scratch), "s");
    EXPECT_STREQ(protocolName(Protocol::LL), "LL");
    EXPECT_STREQ(protocolName(Protocol::LL128), "LL128");
    EXPECT_STREQ(protocolName(Protocol::Simple), "Simple");
    EXPECT_STREQ(protocolName(Protocol::Direct), "Direct");
    EXPECT_STREQ(reduceOpName(ReduceOp::Sum), "sum");
}

} // namespace
} // namespace mscclang
