/**
 * @file
 * The content-addressed plan cache: a warm hit must be byte-identical
 * (same toXml()) to the cold compile for every collective the repo
 * ships, keys must separate anything that can change the compiled
 * plan (algorithm config via the trace, compile options, topology),
 * and the on-disk spill must round-trip, reject corrupt or stale
 * entries by recompiling, and never change observable results.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collectives/classic.h"
#include "collectives/collectives.h"
#include "common/strings.h"
#include "compiler/plan_cache.h"
#include "search/search.h"
#include "topology/topology.h"

namespace mscclang {
namespace {

struct Case
{
    const char *name;
    std::function<std::unique_ptr<Program>()> make;
    /** Null topology unless the algorithm is machine-specific. */
    bool dgx1Topology = false;
};

const Topology &
dgx1()
{
    static Topology topo = makeDgx1();
    return topo;
}

/** Every collective family in src/collectives/. */
std::vector<Case>
allCollectives()
{
    AlgoConfig plain;
    AlgoConfig i2;
    i2.instances = 2;
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    ll.instances = 2;
    return {
        { "ring_allreduce",
          [=] { return makeRingAllReduce(8, 2, i2); } },
        { "ring_allreduce_oop",
          [=] { return makeRingAllReduceOutOfPlace(8, 2, i2); } },
        { "allpairs_allreduce",
          [=] { return makeAllPairsAllReduce(8, ll); } },
        { "hierarchical_allreduce",
          [=] { return makeHierarchicalAllReduce(2, 4, 2, plain); } },
        { "twostep_alltoall",
          [=] { return makeTwoStepAllToAll(2, 4, plain); } },
        { "naive_alltoall",
          [=] { return makeNaiveAllToAll(8, plain); } },
        { "alltonext",
          [=] { return makeAllToNext(2, 4, plain); } },
        { "naive_alltonext",
          [=] { return makeNaiveAllToNext(2, 4, plain); } },
        { "ring_allgather",
          [=] { return makeRingAllGather(8, 2, i2); } },
        { "ring_allreduce_over",
          [=] {
              return makeRingAllReduceOver({ 0, 2, 1, 3 }, 1, plain);
          } },
        { "ring_allgather_over",
          [=] {
              return makeRingAllGatherOver({ 3, 1, 2, 0 }, 1, plain);
          } },
        { "sccl122_allgather",
          [=] { return makeSccl122AllGather(dgx1(), plain); }, true },
        { "dbt_allreduce",
          [=] { return makeDoubleBinaryTreeAllReduce(16, ll); } },
        { "rh_reducescatter",
          [=] { return makeRecursiveHalvingReduceScatter(8, plain); } },
        { "rd_allgather",
          [=] { return makeRecursiveDoublingAllGather(8, plain); } },
        { "rabenseifner_allreduce",
          [=] { return makeRabenseifnerAllReduce(8, plain); } },
        { "ring_broadcast",
          [=] { return makeRingBroadcast(8, 0, 4, plain); } },
        { "binomial_broadcast",
          [=] { return makeBinomialBroadcast(8, 0, plain); } },
        { "hierarchical_allgather",
          [=] { return makeHierarchicalAllGather(2, 4, plain); } },
    };
}

CompileOptions
optionsFor(const Case &c)
{
    CompileOptions copts;
    if (c.dgx1Topology)
        copts.topology = &dgx1();
    return copts;
}

/** RAII MSCCLANG_PLAN_CACHE_DIR pointing at a fresh temp dir. */
class SpillDir
{
  public:
    SpillDir()
    {
        path_ = testing::TempDir() + "mscclang_plan_cache_" +
            std::to_string(::getpid());
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
        ::setenv("MSCCLANG_PLAN_CACHE_DIR", path_.c_str(), 1);
    }
    ~SpillDir()
    {
        ::unsetenv("MSCCLANG_PLAN_CACHE_DIR");
        std::filesystem::remove_all(path_);
    }
    const std::string &path() const { return path_; }

    std::string
    planFile(std::uint64_t key) const
    {
        char name[64];
        std::snprintf(name, sizeof name, "plan-%016llx.xml",
                      static_cast<unsigned long long>(key));
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return out;
}

TEST(PlanCache, WarmHitIsByteIdenticalForEveryCollective)
{
    for (const Case &c : allCollectives()) {
        SCOPED_TRACE(c.name);
        CompileOptions copts = optionsFor(c);
        std::string cold =
            compileProgram(*c.make(), copts).ir.toXml();

        PlanCache cache(64);
        Compiled first = cache.compile(*c.make(), copts);
        Compiled warm = cache.compile(*c.make(), copts);
        EXPECT_EQ(cache.misses(), 1u);
        EXPECT_EQ(cache.hits(), 1u);
        EXPECT_EQ(warm.ir.toXml(), cold);
        // Memory hits carry the full original stats.
        EXPECT_EQ(warm.stats.totalInstructions,
                  first.stats.totalInstructions);
        EXPECT_EQ(warm.stats.instrsAfterFusion,
                  first.stats.instrsAfterFusion);
        EXPECT_EQ(warm.stats.channels, first.stats.channels);
    }
}

TEST(PlanCache, HitReturnsAnIsolatedCopy)
{
    // baselines.cpp renames out.ir after compiling; a later hit must
    // not observe the caller's mutation.
    PlanCache cache(8);
    AlgoConfig plain;
    Compiled a = cache.compile(*makeNaiveAllToAll(4, plain));
    std::string original_name = a.ir.name;
    a.ir.name = "mutated_by_caller";
    Compiled b = cache.compile(*makeNaiveAllToAll(4, plain));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(b.ir.name, original_name);
}

TEST(PlanCache, KeySeparatesAlgoConfig)
{
    // AlgoConfig is baked into the trace, so differing configs must
    // produce differing program fingerprints.
    AlgoConfig plain;
    AlgoConfig i2;
    i2.instances = 2;
    AlgoConfig ll;
    ll.protocol = Protocol::LL;
    CompileOptions copts;
    std::uint64_t base =
        planCacheKey(*makeRingAllReduce(8, 2, plain), copts);
    EXPECT_NE(base, planCacheKey(*makeRingAllReduce(8, 2, i2), copts));
    EXPECT_NE(base, planCacheKey(*makeRingAllReduce(8, 2, ll), copts));
    EXPECT_NE(base, planCacheKey(*makeRingAllReduce(8, 4, plain), copts));
    EXPECT_NE(base, planCacheKey(*makeRingAllReduce(16, 2, plain), copts));
    EXPECT_NE(base,
              planCacheKey(*makeRingAllGather(8, 2, plain), copts));
}

TEST(PlanCache, KeySeparatesEverySearchKnob)
{
    // Satellite of the schedule search: every knob the candidate
    // generator varies (channels, parallelize, instances, protocol,
    // aggregation) must feed the content key, so two candidates
    // differing in exactly one knob can never collide in the cache
    // and silently reuse each other's plan.
    Topology topo = makeNdv4(1);
    CompileOptions copts;
    copts.topology = &topo;
    ScheduleCandidate base;
    base.family = AlgoFamily::Ring;
    base.channels = 2;
    base.parallelize = 1;
    base.instances = 2;
    base.protocol = Protocol::LL;
    base.aggregate = 1;

    std::vector<ScheduleCandidate> variants(6, base);
    variants[1].channels = 4;
    variants[2].parallelize = 2;
    variants[3].instances = 4;
    variants[4].protocol = Protocol::LL128;
    variants[5].aggregate = 2;

    std::vector<std::uint64_t> keys;
    for (const ScheduleCandidate &spec : variants)
        keys.push_back(
            planCacheKey(*buildCandidate(spec, topo), copts));
    for (size_t a = 0; a < keys.size(); a++)
        for (size_t b = a + 1; b < keys.size(); b++)
            EXPECT_NE(keys[a], keys[b])
                << candidateLabel(variants[a]) << " vs "
                << candidateLabel(variants[b]);

    // And the same knob spelled twice keys identically (the dedup
    // the search relies on).
    EXPECT_EQ(keys[0],
              planCacheKey(*buildCandidate(base, topo), copts));
}

TEST(PlanCache, KeySeparatesCompileOptions)
{
    AlgoConfig plain;
    auto prog = makeRingAllReduce(8, 2, plain);
    CompileOptions base;
    std::uint64_t key = planCacheKey(*prog, base);

    CompileOptions no_fuse = base;
    no_fuse.fuse = false;
    EXPECT_NE(key, planCacheKey(*prog, no_fuse));

    CompileOptions no_verify = base;
    no_verify.verify = false;
    EXPECT_NE(key, planCacheKey(*prog, no_verify));

    CompileOptions tbs = base;
    tbs.maxThreadBlocks = 7;
    EXPECT_NE(key, planCacheKey(*prog, tbs));

    CompileOptions slots = base;
    slots.verifySlots = 1;
    EXPECT_NE(key, planCacheKey(*prog, slots));
}

TEST(PlanCache, KeySeparatesTopology)
{
    AlgoConfig plain;
    auto prog = makeRingAllReduce(8, 1, plain);
    Topology ndv4 = makeNdv4(1);
    Topology dgx2 = makeDgx2(1);

    CompileOptions none;
    CompileOptions with_ndv4;
    with_ndv4.topology = &ndv4;
    CompileOptions with_dgx2;
    with_dgx2.topology = &dgx2;

    std::uint64_t k_none = planCacheKey(*prog, none);
    std::uint64_t k_ndv4 = planCacheKey(*prog, with_ndv4);
    std::uint64_t k_dgx2 = planCacheKey(*prog, with_dgx2);
    EXPECT_NE(k_none, k_ndv4);
    EXPECT_NE(k_none, k_dgx2);
    EXPECT_NE(k_ndv4, k_dgx2);

    // A degraded machine (the replan path) must not collide with the
    // healthy one.
    EXPECT_NE(fingerprintTopology(ndv4),
              fingerprintTopology(ndv4.degraded({ Link{ 0, 1 } })));
}

TEST(PlanCache, KeySeparatesNodeAndRailStructure)
{
    // Two machines with byte-identical resource sets and link
    // matrices but different node boundaries: 2x4 vs 4x2 over the
    // same 8 ranks, every pair connected through the same per-rank
    // egress/ingress resources. Schedulers key decisions on nodeOf,
    // so the fingerprints must not collide.
    auto build = [](int nodes, int gpus) {
        Topology topo("uniform", nodes, gpus, MachineParams{});
        int ranks = topo.numRanks();
        std::vector<ResourceId> out(ranks), in(ranks);
        for (int r = 0; r < ranks; r++) {
            out[r] = topo.addResource(strprintf("out[%d]", r), 100.0);
            in[r] = topo.addResource(strprintf("in[%d]", r), 100.0);
        }
        for (int src = 0; src < ranks; src++) {
            for (int dst = 0; dst < ranks; dst++) {
                if (src == dst)
                    continue;
                Route route;
                route.type = LinkType::NvLink;
                route.resources = { out[src], in[dst] };
                route.extraLatencyUs = 1.0;
                topo.setRoute(src, dst, route);
            }
        }
        return topo;
    };
    Topology two_by_four = build(2, 4);
    Topology four_by_two = build(4, 2);
    EXPECT_NE(fingerprintTopology(two_by_four),
              fingerprintTopology(four_by_two));

    // Same shape, different rail maps: a rank's NIC assignment
    // changes which inter-node rings are rail-aligned.
    Topology paired = build(2, 4);
    paired.setRailLayout(TopologyVariant::Flat, 2, { 0, 0, 1, 1 });
    Topology striped = build(2, 4);
    striped.setRailLayout(TopologyVariant::Flat, 2, { 0, 1, 0, 1 });
    EXPECT_NE(fingerprintTopology(paired),
              fingerprintTopology(striped));

    // Variant alone separates too (flat vs rail NDv4 differ in
    // resources as well, but the tag itself is hashed).
    EXPECT_NE(fingerprintTopology(makeNdv4(2)),
              fingerprintTopology(makeNdv4(2, TopologyVariant::Rail)));
}

TEST(PlanCache, LruEvictsLeastRecentlyUsed)
{
    AlgoConfig plain;
    PlanCache cache(1);
    cache.compile(*makeNaiveAllToAll(2, plain));
    cache.compile(*makeNaiveAllToAll(4, plain)); // evicts the 2-rank
    cache.compile(*makeNaiveAllToAll(2, plain));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(PlanCache, DiskSpillRoundTripsAcrossCacheInstances)
{
    SpillDir dir;
    AlgoConfig i2;
    i2.instances = 2;
    auto make = [&] { return makeRingAllReduce(8, 2, i2); };
    CompileOptions copts;
    std::uint64_t key = planCacheKey(*make(), copts);

    PlanCache writer(8);
    std::string cold = writer.compile(*make(), copts).ir.toXml();
    ASSERT_TRUE(std::filesystem::exists(dir.planFile(key)));

    // A fresh cache (new process, conceptually) loads from disk
    // instead of compiling, byte-identically.
    PlanCache reader(8);
    Compiled warm = reader.compile(*make(), copts);
    EXPECT_EQ(reader.diskHits(), 1u);
    EXPECT_EQ(warm.ir.toXml(), cold);
    // Disk hits reconstruct the IR-derivable stats.
    EXPECT_GT(warm.stats.totalInstructions, 0);
    EXPECT_GT(warm.stats.channels, 0);
}

TEST(PlanCache, CorruptDiskEntryFallsBackToFreshCompile)
{
    SpillDir dir;
    AlgoConfig plain;
    auto make = [&] { return makeNaiveAllToAll(4, plain); };
    CompileOptions copts;
    std::uint64_t key = planCacheKey(*make(), copts);
    std::string cold = compileProgram(*make(), copts).ir.toXml();

    {
        std::ofstream out(dir.planFile(key));
        out << "<mscclang-this-is-not-xml";
    }
    PlanCache cache(8);
    Compiled got = cache.compile(*make(), copts);
    EXPECT_EQ(cache.diskHits(), 0u);
    EXPECT_EQ(got.ir.toXml(), cold);
    // The corrupt entry was overwritten with a valid plan.
    EXPECT_EQ(slurp(dir.planFile(key)), cold);
}

TEST(PlanCache, MismatchedDiskEntryFallsBackToFreshCompile)
{
    // A parseable file whose shape does not match the request (stale
    // key collision, foreign file) must be ignored, not trusted.
    SpillDir dir;
    AlgoConfig plain;
    auto make = [&] { return makeNaiveAllToAll(4, plain); };
    CompileOptions copts;
    std::uint64_t key = planCacheKey(*make(), copts);
    std::string cold = compileProgram(*make(), copts).ir.toXml();

    std::string other =
        compileProgram(*makeRingAllGather(8, 2, plain)).ir.toXml();
    {
        std::ofstream out(dir.planFile(key));
        out << other;
    }
    PlanCache cache(8);
    Compiled got = cache.compile(*make(), copts);
    EXPECT_EQ(cache.diskHits(), 0u);
    EXPECT_EQ(got.ir.toXml(), cold);
    EXPECT_EQ(slurp(dir.planFile(key)), cold);
}

TEST(PlanCache, GlobalEntryPointIsCoherent)
{
    AlgoConfig plain;
    CompileOptions copts;
    std::string a =
        compileProgramCached(*makeNaiveAllToAll(2, plain), copts)
            .ir.toXml();
    std::string b =
        compileProgramCached(*makeNaiveAllToAll(2, plain), copts)
            .ir.toXml();
    std::string cold =
        compileProgram(*makeNaiveAllToAll(2, plain), copts).ir.toXml();
    EXPECT_EQ(a, cold);
    EXPECT_EQ(b, cold);
}

} // namespace
} // namespace mscclang
