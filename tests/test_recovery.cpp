/**
 * @file
 * Tests for the self-healing runtime: link-health scoring and the
 * quarantine state machine, degraded-topology construction, ring
 * reformation around dead links, the Communicator's replan path
 * (verifier-checked recompilation, replan cache), progress-aware
 * rollback, transient-stall backoff, and the tuner's quarantine
 * retune hook — all bit-deterministic across runs and tuner thread
 * counts.
 */

#include <limits>

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "runtime/communicator.h"
#include "runtime/health.h"
#include "runtime/tuner.h"
#include "test_util.h"

namespace mscclang {
namespace {

using testing::fillInputs;

FaultEvent
makeFault(ResourceId resource, FaultKind kind, double at_us,
          double duration_us = 0.0, double factor = 0.5)
{
    FaultEvent event;
    event.resource = resource;
    event.kind = kind;
    event.atUs = at_us;
    event.durationUs = duration_us;
    event.factor = factor;
    return event;
}

/** Resource id by exact name; fails the test when absent. */
ResourceId
resourceNamed(const Topology &topo, const std::string &name)
{
    for (ResourceId id = 0; id < topo.numResources(); id++) {
        if (topo.resourceName(id) == name)
            return id;
    }
    ADD_FAILURE() << "no resource named " << name;
    return -1;
}

TEST(Health, FaultScoresQuarantineAndDecay)
{
    Topology topo = makeGeneric(2, 4);
    LinkHealthMonitor monitor(topo);
    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");

    // A NIC-send fault implicates exactly rank 3's cross-node links.
    std::vector<Link> nic_links = topo.linksUsingResource(nic);
    ASSERT_EQ(nic_links.size(), 4u);
    EXPECT_EQ(nic_links.front(), (Link{ 3, 4 }));
    EXPECT_EQ(nic_links.back(), (Link{ 3, 7 }));

    // A Degrade alone stays below the threshold; LinkDown does not.
    monitor.noteFault(makeFault(nic, FaultKind::Degrade, 1.0));
    EXPECT_EQ(monitor.state(Link{ 3, 4 }), LinkState::Healthy);
    monitor.noteFault(makeFault(nic, FaultKind::LinkDown, 2.0));
    EXPECT_EQ(monitor.state(Link{ 3, 4 }), LinkState::Quarantined);
    EXPECT_EQ(monitor.quarantined(), nic_links);
    // Links on other resources are untouched.
    EXPECT_EQ(monitor.state(Link{ 0, 1 }), LinkState::Healthy);

    // Scores decay exponentially at run starts.
    double before = monitor.score(Link{ 3, 4 });
    monitor.beginRun();
    EXPECT_DOUBLE_EQ(monitor.score(Link{ 3, 4 }),
                     before * monitor.options().decayPerRun);
}

TEST(Health, QuarantineProbesAndHeals)
{
    Topology topo = makeGeneric(1, 4);
    HealthOptions options;
    options.probeAfterRuns = 2;
    LinkHealthMonitor monitor(topo, options);

    Link link{ 0, 1 };
    monitor.noteBlocked({ link });
    monitor.noteBlocked({ link }); // 2 x 0.5 crosses the threshold
    ASSERT_EQ(monitor.state(link), LinkState::Quarantined);

    // Two successful runs elsewhere move it to probing...
    monitor.noteSuccess({});
    EXPECT_EQ(monitor.state(link), LinkState::Quarantined);
    monitor.noteSuccess({});
    EXPECT_EQ(monitor.state(link), LinkState::Probing);
    EXPECT_TRUE(monitor.quarantined().empty());

    // ...and a successful run across it heals it completely.
    monitor.noteSuccess({ link });
    EXPECT_EQ(monitor.state(link), LinkState::Healthy);
    EXPECT_DOUBLE_EQ(monitor.score(link), 0.0);
}

TEST(Health, FailedProbeDoublesTheHold)
{
    Topology topo = makeGeneric(1, 4);
    HealthOptions options;
    options.probeAfterRuns = 1;
    LinkHealthMonitor monitor(topo, options);

    Link link{ 0, 1 };
    monitor.noteBlocked({ link });
    monitor.noteBlocked({ link }); // 2 x 0.5 crosses the threshold
    ASSERT_EQ(monitor.state(link), LinkState::Quarantined);
    monitor.noteSuccess({});
    ASSERT_EQ(monitor.state(link), LinkState::Probing);

    // The probe is implicated again: quarantined for twice as long.
    monitor.noteBlocked({ link });
    EXPECT_EQ(monitor.state(link), LinkState::Quarantined);
    monitor.noteSuccess({});
    EXPECT_EQ(monitor.state(link), LinkState::Quarantined);
    monitor.noteSuccess({});
    EXPECT_EQ(monitor.state(link), LinkState::Probing);
}

TEST(Health, BackoffIsBoundedDeterministicAndResets)
{
    Topology topo = makeGeneric(1, 4);
    LinkHealthMonitor a(topo), b(topo);
    std::vector<double> seq_a, seq_b;
    for (int i = 0; i < 8; i++) {
        seq_a.push_back(a.nextBackoffUs());
        seq_b.push_back(b.nextBackoffUs());
    }
    EXPECT_EQ(seq_a, seq_b); // same seed, bit-identical jitter
    for (double us : seq_a) {
        EXPECT_GT(us, 0.0);
        EXPECT_LE(us, a.options().backoffMaxUs);
    }
    // Exponential growth until the cap.
    EXPECT_GT(seq_a[1], seq_a[0]);
    EXPECT_TRUE(a.transientBudgetSpent());
    a.noteSuccess({});
    EXPECT_EQ(a.backoffsTaken(), 0);
    EXPECT_FALSE(a.transientBudgetSpent());
}

TEST(Recovery, DegradedTopologyDropsExactlyTheExcludedLinks)
{
    Topology topo = makeGeneric(2, 4);
    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");
    Topology degraded = topo.degraded(topo.linksUsingResource(nic));

    for (int dst = 4; dst < 8; dst++) {
        EXPECT_FALSE(degraded.connected(3, dst));
        EXPECT_TRUE(degraded.connected(dst, 3)); // reverse unaffected
    }
    EXPECT_TRUE(degraded.connected(3, 0));
    EXPECT_TRUE(degraded.connected(0, 4));
    EXPECT_EQ(degraded.numResources(), topo.numResources());
    EXPECT_TRUE(degraded.faultSchedule().empty());

    EXPECT_THROW(topo.degraded({ Link{ 0, 99 } }), Error);
}

TEST(Recovery, FindRingOrderRoutesAroundDeadLinks)
{
    Topology topo = makeGeneric(2, 4);
    // The healthy machine is all-to-all: identity order wins.
    std::vector<Rank> healthy = findRingOrder(topo);
    EXPECT_EQ(healthy, (std::vector<Rank>{ 0, 1, 2, 3, 4, 5, 6, 7 }));

    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");
    Topology degraded = topo.degraded(topo.linksUsingResource(nic));
    std::vector<Rank> order = findRingOrder(degraded);
    ASSERT_EQ(order.size(), 8u);
    for (size_t i = 0; i < order.size(); i++) {
        Rank from = order[i];
        Rank to = order[(i + 1) % order.size()];
        EXPECT_TRUE(degraded.connected(from, to))
            << linkName(Link{ from, to });
    }

    // Cutting every link out of a rank makes a cycle impossible.
    std::vector<Link> all_out;
    for (int dst = 1; dst < 8; dst++)
        all_out.push_back(Link{ 0, dst });
    EXPECT_TRUE(findRingOrder(topo.degraded(all_out)).empty());
}

TEST(Recovery, ReformedRingPrefersSameNodePaths)
{
    // Kill two intra-node links on node 0 of a 2-node machine. A
    // purely lexicographic reformation would hop to node 1 and back
    // to pick up the stranded rank (4 node crossings); the same-node
    // preference must detour locally and cross the NIC boundary only
    // the minimal 2 times.
    Topology topo = makeGeneric(2, 4);
    Topology degraded =
        topo.degraded({ Link{ 1, 2 }, Link{ 3, 2 } });
    std::vector<Rank> order = findRingOrder(degraded);
    ASSERT_EQ(order.size(), 8u);
    int crossings = 0;
    for (size_t i = 0; i < order.size(); i++) {
        Rank from = order[i];
        Rank to = order[(i + 1) % order.size()];
        EXPECT_TRUE(degraded.connected(from, to))
            << linkName(Link{ from, to });
        if (degraded.nodeOf(from) != degraded.nodeOf(to))
            crossings++;
    }
    EXPECT_EQ(crossings, 2);
    EXPECT_EQ(order,
              (std::vector<Rank>{ 0, 1, 3, 4, 5, 6, 7, 2 }));

    // The reformed program over that order still computes allreduce.
    auto prog = makeRingAllReduceOver(order, 1, {});
    EXPECT_EQ(testing::runAndCheck(degraded, *prog, 8 * 1024), "");
}

/**
 * The acceptance scenario: a 2-node generic machine, primary ring in
 * rank order, the NIC carrying rank 3's cross-node sends dies
 * mid-kernel. The run must recover via a verifier-checked recompiled
 * ring over the surviving links — not the registered fallback — with
 * bit-correct buffers.
 */
struct ReplanHarness
{
    Topology topo = makeGeneric(2, 4);
    IrProgram primary;
    IrProgram fallback;

    ReplanHarness()
    {
        primary = compileProgram(*makeRingAllReduce(8, 1, {})).ir;
        primary.name = "ring-primary";
        fallback = compileProgram(*makeRingAllReduce(8, 2, {})).ir;
        fallback.name = "ring-fallback";
    }

    Communicator
    makeComm() const
    {
        Communicator comm(topo);
        IrProgram ir = primary;
        comm.registerAlgorithm(
            std::move(ir), 0,
            std::numeric_limits<std::uint64_t>::max());
        IrProgram fb = fallback;
        comm.registerFallback("allreduce", [fb](std::uint64_t) {
            return fb;
        });
        comm.registerReplanner(
            "allreduce",
            [](const Topology &degraded,
               std::uint64_t) -> std::unique_ptr<Program> {
                std::vector<Rank> order = findRingOrder(degraded);
                if (order.empty())
                    return nullptr;
                return makeRingAllReduceOver(order, 1, {});
            });
        return comm;
    }

    double
    healthyUs() const
    {
        Communicator comm = makeComm();
        RunOptions run;
        run.bytes = 1 << 20;
        return comm.run("allreduce", run).timeUs;
    }
};

TEST(Recovery, LinkDownRecoversViaReplanNotFallback)
{
    ReplanHarness harness;
    std::uint64_t bytes = 1 << 20;
    double healthy_us = harness.healthyUs();
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(resourceNamed(harness.topo, "ib-send[0.3]"),
                    FaultKind::LinkDown, healthy_us * 0.3) } });

    Communicator comm = harness.makeComm();
    std::vector<std::vector<float>> inputs =
        fillInputs(comm, harness.primary, bytes);
    RunOptions run;
    run.bytes = bytes;
    run.dataMode = true;
    run.watchdogNoProgressUs = healthy_us;
    RunResult result = comm.run("allreduce", run);

    EXPECT_EQ(result.attempts, 2);
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(result.recoveredViaReplan);
    EXPECT_EQ(result.algorithm, "ring_allreduce_reformed_ch1 (replan)");
    EXPECT_FALSE(result.stats.aborted);
    EXPECT_GE(result.faultsSeen, 1);
    EXPECT_TRUE(result.rolledBack); // in-place allreduce mutates input
    EXPECT_GT(result.totalTimeUs, result.timeUs);
    ASSERT_EQ(result.quarantinedLinks.size(), 4u);
    EXPECT_EQ(result.quarantinedLinks.front(), (Link{ 3, 4 }));
    EXPECT_EQ(comm.replanCompiles(), 1);

    // Bit-correct buffers despite the aborted in-place attempt.
    auto program = makeRingAllReduce(8, 1, {});
    std::vector<std::vector<float>> outputs(8);
    for (int r = 0; r < 8; r++) {
        outputs[r] = comm.store().buffer(r, BufferKind::Output,
                                         harness.primary.inPlace);
    }
    EXPECT_EQ(compareToReference(program->collective(), inputs,
                                 outputs, ReduceOp::Sum),
              "");
}

TEST(Recovery, ReplanCacheHitsOnRepeatedRuns)
{
    ReplanHarness harness;
    std::uint64_t bytes = 1 << 20;
    double healthy_us = harness.healthyUs();
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(resourceNamed(harness.topo, "ib-send[0.3]"),
                    FaultKind::LinkDown, healthy_us * 0.3) } });

    Communicator comm = harness.makeComm();
    RunOptions run;
    run.bytes = bytes;
    run.watchdogNoProgressUs = healthy_us;
    RunResult first = comm.run("allreduce", run);
    EXPECT_EQ(first.attempts, 2);
    EXPECT_TRUE(first.recoveredViaReplan);
    EXPECT_EQ(comm.replanCompiles(), 1);

    // The fault was consumed, but the quarantine persists: the next
    // run skips the primary window and goes straight to the cached
    // repair plan — no second compile, no extra attempts.
    RunResult second = comm.run("allreduce", run);
    EXPECT_EQ(second.attempts, 1);
    EXPECT_TRUE(second.recoveredViaReplan);
    EXPECT_FALSE(second.degraded);
    EXPECT_EQ(second.algorithm,
              "ring_allreduce_reformed_ch1 (replan)");
    EXPECT_EQ(comm.replanCompiles(), 1);
}

TEST(Recovery, RecoveryIsDeterministicAcrossRuns)
{
    ReplanHarness harness;
    double healthy_us = harness.healthyUs();
    harness.topo.setFaultSchedule(FaultSchedule{
        { makeFault(resourceNamed(harness.topo, "ib-send[0.3]"),
                    FaultKind::LinkDown, healthy_us * 0.3) } });
    RunOptions run;
    run.bytes = 1 << 20;
    run.watchdogNoProgressUs = healthy_us;

    Communicator first = harness.makeComm();
    RunResult a = first.run("allreduce", run);
    Communicator second = harness.makeComm();
    RunResult b = second.run("allreduce", run);

    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.faultsSeen, b.faultsSeen);
    EXPECT_DOUBLE_EQ(a.timeUs, b.timeUs);
    EXPECT_DOUBLE_EQ(a.totalTimeUs, b.totalTimeUs);
    EXPECT_DOUBLE_EQ(a.backoffUs, b.backoffUs);
    EXPECT_EQ(a.quarantinedLinks, b.quarantinedLinks);
}

TEST(Recovery, CopyOnlyCollectiveRetriesWithoutRollback)
{
    Topology topo = makeGeneric(1, 4);
    IrProgram primary =
        compileProgram(*makeRingAllGather(4, 1, {})).ir;
    primary.name = "ag-primary";
    ASSERT_FALSE(primary.mutatesInput());
    IrProgram fb = compileProgram(*makeRingAllGather(4, 2, {})).ir;
    fb.name = "ag-fallback";

    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm(topo);
        RunOptions run;
        run.bytes = bytes;
        run.dataMode = true;
        fillInputs(comm, primary, bytes);
        healthy_us = comm.runProgram(primary, run).timeUs;
    }
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(topo.route(0, 1).resources.front(),
                    FaultKind::LinkDown, healthy_us * 0.3) } });

    Communicator comm(topo);
    comm.registerAlgorithm(IrProgram(primary), 0,
                           std::numeric_limits<std::uint64_t>::max());
    comm.registerFallback("allgather",
                          [fb](std::uint64_t) { return fb; });
    std::vector<std::vector<float>> inputs =
        fillInputs(comm, primary, bytes);
    RunOptions run;
    run.bytes = bytes;
    run.dataMode = true;
    run.watchdogNoProgressUs = healthy_us;
    RunResult result = comm.run("allgather", run);

    // Progress-aware recovery: no snapshot, no rollback — the
    // copy-only retry just re-executes over the intact inputs.
    EXPECT_EQ(result.attempts, 2);
    EXPECT_FALSE(result.rolledBack);
    EXPECT_EQ(result.algorithm, "ag-fallback (fallback)");

    auto program = makeRingAllGather(4, 1, {});
    std::vector<std::vector<float>> outputs(4);
    for (int r = 0; r < 4; r++) {
        outputs[r] = comm.store().buffer(r, BufferKind::Output,
                                         primary.inPlace);
    }
    EXPECT_EQ(compareToReference(program->collective(), inputs,
                                 outputs, ReduceOp::Sum),
              "");
}

TEST(Recovery, TransientStallBacksOffAndKeepsThePlan)
{
    Topology topo = makeGeneric(1, 4);
    IrProgram primary = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    primary.name = "ring-primary";
    IrProgram fb = compileProgram(*makeRingAllReduce(4, 2, {})).ir;
    fb.name = "ring-fallback";

    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm(topo);
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.runProgram(primary, run).timeUs;
    }
    // A long stall wedges the kernel past the no-progress watchdog,
    // but a stall is transient evidence: scores stay below the
    // threshold, so the retry backs off and keeps the same plan.
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(topo.route(0, 1).resources.front(),
                    FaultKind::Stall, healthy_us * 0.3,
                    healthy_us * 50.0) } });

    Communicator comm(topo);
    comm.registerAlgorithm(IrProgram(primary), 0,
                           std::numeric_limits<std::uint64_t>::max());
    comm.registerFallback("allreduce",
                          [fb](std::uint64_t) { return fb; });
    RunOptions run;
    run.bytes = bytes;
    run.watchdogNoProgressUs = healthy_us * 0.5;
    RunResult result = comm.run("allreduce", run);

    EXPECT_EQ(result.attempts, 2);
    EXPECT_EQ(result.algorithm, "ring-primary"); // no fallback suffix
    EXPECT_FALSE(result.recoveredViaReplan);
    EXPECT_GT(result.backoffUs, 0.0);
    EXPECT_GE(result.totalTimeUs, result.timeUs + result.backoffUs);
    EXPECT_TRUE(result.quarantinedLinks.empty());
}

TEST(Recovery, RetunedWindowAvoidingQuarantineWinsOverReplan)
{
    Topology topo = makeGeneric(2, 4);
    // Candidate A: the identity ring (crosses 3->4). Candidate B: a
    // ring whose node crossings avoid rank 3's NIC entirely.
    IrProgram cand_a = compileProgram(*makeRingAllReduce(8, 1, {})).ir;
    cand_a.name = "ring-identity";
    IrProgram cand_b =
        compileProgram(*makeRingAllReduceOver(
                           { 0, 1, 2, 4, 5, 6, 7, 3 }, 1, {}))
            .ir;
    cand_b.name = "ring-detour";

    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm(topo);
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.runProgram(cand_a, run).timeUs;
    }

    // Tune on the healthy machine (the realistic order: windows are
    // built before anything fails), then arm the fault.
    std::vector<IrProgram> candidates{ cand_a, cand_b };
    TuneOptions tune;
    tune.fromBytes = bytes;
    tune.toBytes = bytes;
    tune.threads = 1;
    std::vector<TunedWindow> windows =
        tuneWindows(topo, candidates, tune);
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(resourceNamed(topo, "ib-send[0.3]"),
                    FaultKind::LinkDown, healthy_us * 0.3) } });

    auto make_comm = [&](int threads) {
        auto comm = std::make_unique<Communicator>(topo);
        TuneOptions retune = tune;
        retune.threads = threads; // the hook re-tunes with these
        registerTuned(*comm, candidates, windows, retune);
        IrProgram fb = cand_a;
        fb.name = "ring-fallback";
        comm->registerFallback("allreduce",
                               [fb](std::uint64_t) { return fb; });
        return comm;
    };

    RunOptions run;
    run.bytes = bytes;
    run.watchdogNoProgressUs = healthy_us;

    auto comm = make_comm(1);
    RunResult result = comm->run("allreduce", run);
    // The retune hook dropped the dead windows and re-tuned the
    // surviving candidate on the degraded machine: recovery lands on
    // a first-class window, not the replan path or the fallback.
    EXPECT_EQ(result.attempts, 2);
    EXPECT_EQ(result.algorithm, "ring-detour");
    EXPECT_FALSE(result.recoveredViaReplan);
    EXPECT_EQ(comm->replanCompiles(), 0);

    // And the whole recovery is invariant to tuner thread counts.
    auto comm4 = make_comm(4);
    RunResult threaded = comm4->run("allreduce", run);
    EXPECT_EQ(threaded.algorithm, result.algorithm);
    EXPECT_EQ(threaded.attempts, result.attempts);
    EXPECT_DOUBLE_EQ(threaded.timeUs, result.timeUs);
    EXPECT_DOUBLE_EQ(threaded.totalTimeUs, result.totalTimeUs);
}

TEST(Recovery, ReplanFailureFallsBackBlind)
{
    // Cut every link out of rank 0: no Hamiltonian cycle survives,
    // so the replanner returns null and recovery degrades to the
    // registered fallback.
    Topology topo = makeGeneric(1, 4);
    IrProgram primary = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    primary.name = "ring-primary";
    IrProgram fb = compileProgram(*makeRingAllReduce(4, 2, {})).ir;
    fb.name = "ring-fallback";

    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm(topo);
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.runProgram(primary, run).timeUs;
    }
    // nvlink-out[0] carries every link out of rank 0.
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(resourceNamed(topo, "nvlink-out[0]"),
                    FaultKind::LinkDown, healthy_us * 0.3) } });

    Communicator comm(topo);
    comm.registerAlgorithm(IrProgram(primary), 0,
                           std::numeric_limits<std::uint64_t>::max());
    comm.registerFallback("allreduce",
                          [fb](std::uint64_t) { return fb; });
    comm.registerReplanner(
        "allreduce",
        [](const Topology &degraded,
           std::uint64_t) -> std::unique_ptr<Program> {
            std::vector<Rank> order = findRingOrder(degraded);
            if (order.empty())
                return nullptr;
            return makeRingAllReduceOver(order, 1, {});
        });
    RunOptions run;
    run.bytes = bytes;
    run.watchdogNoProgressUs = healthy_us;
    RunResult result = comm.run("allreduce", run);

    EXPECT_EQ(result.attempts, 2);
    EXPECT_EQ(result.algorithm, "ring-fallback (fallback)");
    EXPECT_FALSE(result.recoveredViaReplan);
    EXPECT_EQ(comm.replanCompiles(), 0);
}

TEST(Recovery, ReformedRingVerifiesAndRunsCorrectly)
{
    // The reformed ring is a first-class program: it compiles with
    // the verifier against the degraded machine and produces
    // oracle-correct buffers on the full one.
    Topology topo = makeGeneric(2, 4);
    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");
    Topology degraded = topo.degraded(topo.linksUsingResource(nic));
    std::vector<Rank> order = findRingOrder(degraded);
    ASSERT_FALSE(order.empty());

    CompileOptions copts;
    copts.topology = &degraded;
    EXPECT_EQ(testing::runAndCheck(topo,
                                   *makeRingAllReduceOver(order, 1, {}),
                                   1 << 18, copts),
              "");
    EXPECT_EQ(testing::runAndCheck(topo,
                                   *makeRingAllGatherOver(order, 1, {}),
                                   1 << 18, copts),
              "");
    // The identity ring does NOT verify against the degraded
    // machine: its 3->4 edge is gone.
    EXPECT_THROW(compileProgram(*makeRingAllReduce(8, 1, {}), copts),
                 Error);
}

/** noteSuccess({}) runs until @p link leaves Quarantined. */
int
runsUntilProbing(LinkHealthMonitor &monitor, Link link)
{
    for (int runs = 1; runs <= 64; runs++) {
        monitor.noteSuccess({});
        if (monitor.state(link) == LinkState::Probing)
            return runs;
    }
    return -1;
}

TEST(Health, ProbeHoldDoublingIsBoundedUnderStorms)
{
    // A link that keeps failing its probe doubles its quarantine
    // hold each round trip, but never past maxProbeHold — a storm
    // cannot push a link into an unbounded exile.
    Topology topo = makeGeneric(1, 4);
    HealthOptions options;
    options.probeAfterRuns = 1;
    options.maxProbeHold = 4;
    LinkHealthMonitor monitor(topo, options);

    Link link{ 0, 1 };
    monitor.noteBlocked({ link });
    monitor.noteBlocked({ link });
    ASSERT_EQ(monitor.state(link), LinkState::Quarantined);

    std::vector<int> holds;
    for (int round = 0; round < 5; round++) {
        holds.push_back(runsUntilProbing(monitor, link));
        monitor.noteBlocked({ link }); // probe fails, hold doubles
        ASSERT_EQ(monitor.state(link), LinkState::Quarantined);
    }
    EXPECT_EQ(holds, (std::vector<int>{ 1, 2, 4, 4, 4 }));
}

TEST(Health, StormRoundTripsAreDeterministicForFixedSeed)
{
    // Two monitors fed the identical storm transcript walk the
    // identical Quarantined -> Probing -> Healthy trajectory and
    // draw bit-identical backoff jitter; a third monitor with a
    // different seed diverges in jitter only.
    Topology topo = makeGeneric(2, 4);
    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");
    Link cross{ 3, 4 };

    HealthOptions seeded;
    seeded.seed = 0xfeedULL;
    HealthOptions other = seeded;
    other.seed = 0xbeefULL;
    LinkHealthMonitor a(topo, seeded), b(topo, seeded);
    LinkHealthMonitor c(topo, other);

    auto drive = [&](LinkHealthMonitor &m) {
        std::vector<double> trace;
        m.beginRun();
        m.noteFault(makeFault(nic, FaultKind::LinkDown, 1.0));
        trace.push_back(static_cast<double>(m.state(cross)));
        trace.push_back(m.nextBackoffUs());
        trace.push_back(m.nextBackoffUs());
        // Heal: hold expires, then a clean probe run crosses it.
        m.noteSuccess({});
        m.noteSuccess({});
        trace.push_back(static_cast<double>(m.state(cross)));
        m.noteSuccess({ cross });
        trace.push_back(static_cast<double>(m.state(cross)));
        trace.push_back(m.score(cross));
        // Second round trip of the storm.
        m.noteFault(makeFault(nic, FaultKind::LinkDown, 2.0));
        trace.push_back(static_cast<double>(m.state(cross)));
        trace.push_back(m.nextBackoffUs());
        return trace;
    };

    std::vector<double> trace_a = drive(a);
    std::vector<double> trace_b = drive(b);
    std::vector<double> trace_c = drive(c);
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_NE(trace_a, trace_c) << "jitter must depend on the seed";
    // The states (every non-backoff entry) agree across seeds.
    EXPECT_EQ(trace_a[0], trace_c[0]);
    EXPECT_EQ(trace_a[3], trace_c[3]);
    EXPECT_EQ(trace_a[4], trace_c[4]);
    EXPECT_EQ(trace_a[6], trace_c[6]);
    // Full round trip actually happened.
    EXPECT_EQ(trace_a[0],
              static_cast<double>(LinkState::Quarantined));
    EXPECT_EQ(trace_a[3], static_cast<double>(LinkState::Probing));
    EXPECT_EQ(trace_a[4], static_cast<double>(LinkState::Healthy));
    EXPECT_EQ(trace_a[6],
              static_cast<double>(LinkState::Quarantined));
}

TEST(Health, InterleavedStreamFeedsStayConsistent)
{
    // The replay engine feeds one shared monitor from several
    // concurrent streams. Duplicate implications of the same NIC
    // must pile onto the same entries — no duplicate quarantine
    // rows, no bleed into unrelated links.
    Topology topo = makeGeneric(2, 4);
    LinkHealthMonitor monitor(topo);
    ResourceId nic = resourceNamed(topo, "ib-send[0.3]");
    std::vector<Link> nic_links = topo.linksUsingResource(nic);

    // Stream A sees the LinkDown; stream B reports the same links
    // blocked; stream A reports them blocked again.
    monitor.noteFault(makeFault(nic, FaultKind::LinkDown, 1.0));
    monitor.noteBlocked(nic_links);
    monitor.noteBlocked(nic_links);
    EXPECT_EQ(monitor.quarantined(), nic_links)
        << "each link exactly once, in canonical order";
    EXPECT_EQ(monitor.state(Link{ 0, 1 }), LinkState::Healthy);

    // A clean run on stream B over healthy links does not release
    // the quarantine early.
    monitor.noteSuccess({ Link{ 0, 1 }, Link{ 1, 2 } });
    EXPECT_EQ(monitor.quarantined(), nic_links);
    EXPECT_DOUBLE_EQ(monitor.score(Link{ 0, 1 }), 0.0);
}

TEST(Recovery, SaturatingAccountingClampsBudgets)
{
    EXPECT_DOUBLE_EQ(saturatingAddUs(1.5, 2.5), 4.0);
    EXPECT_DOUBLE_EQ(saturatingAddUs(kMaxAccountedUs, 1.0),
                     kMaxAccountedUs);
    EXPECT_DOUBLE_EQ(saturatingAddUs(kMaxAccountedUs / 2,
                                     kMaxAccountedUs),
                     kMaxAccountedUs);
    // NaN contributions are dropped, not propagated.
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(saturatingAddUs(3.0, nan), 3.0);
    EXPECT_DOUBLE_EQ(saturatingAddUs(nan, nan), 0.0);
    // Negative contributions are dropped per-operand: accounted
    // time never goes down, let alone negative.
    EXPECT_DOUBLE_EQ(saturatingAddUs(2.0, -5.0), 2.0);
    EXPECT_DOUBLE_EQ(saturatingAddUs(-3.0, -5.0), 0.0);

    EXPECT_EQ(saturatingIncrement(0), 1);
    EXPECT_EQ(saturatingIncrement(std::numeric_limits<int>::max()),
              std::numeric_limits<int>::max());
}

TEST(Recovery, RetryBudgetExhaustionAbortsWithDistinctReason)
{
    // With the budget already spent, exhaustion outranks recovery:
    // even a registered fallback is not consulted, and the error
    // names the budget — not a missing plan. (The replay suite
    // covers the genuine multi-attempt exhaustion path.)
    Topology topo = makeGeneric(1, 4);
    IrProgram primary = compileProgram(*makeRingAllReduce(4, 1, {})).ir;
    primary.name = "ring-primary";
    IrProgram fb = compileProgram(*makeRingAllReduce(4, 2, {})).ir;
    fb.name = "ring-fallback";

    std::uint64_t bytes = 1 << 20;
    double healthy_us;
    {
        Communicator comm(topo);
        RunOptions run;
        run.bytes = bytes;
        healthy_us = comm.runProgram(primary, run).timeUs;
    }
    ResourceId out = resourceNamed(topo, "nvlink-out[0]");
    topo.setFaultSchedule(FaultSchedule{
        { makeFault(out, FaultKind::LinkDown, healthy_us * 0.3) } });

    Communicator comm(topo);
    comm.registerAlgorithm(IrProgram(primary), 0,
                           std::numeric_limits<std::uint64_t>::max());
    comm.registerFallback("allreduce",
                          [fb](std::uint64_t) { return fb; });
    RunOptions run;
    run.bytes = bytes;
    run.watchdogNoProgressUs = healthy_us;
    run.maxAttempts = 1;
    try {
        comm.run("allreduce", run);
        FAIL() << "the only attempt hit a dead link; run must throw";
    } catch (const RuntimeError &error) {
        EXPECT_NE(std::string(error.what())
                      .find("retry budget exhausted"),
                  std::string::npos)
            << error.what();
    }
}

} // namespace
} // namespace mscclang
