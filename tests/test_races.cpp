/**
 * @file
 * Tests for the structural data-race checker: compiler output must
 * always pass (races are prevented by construction, paper §5.2),
 * while hand-built IR with missing cross-thread-block dependencies
 * must be flagged with the offending pair.
 */

#include <gtest/gtest.h>

#include "collectives/classic.h"
#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/verifier.h"

namespace mscclang {
namespace {

TEST(RaceChecker, CompilerOutputIsRaceFreeByConstruction)
{
    AlgoConfig config;
    config.instances = 2;
    verifyRaceFree(compileProgram(*makeRingAllReduce(6, 3, config)).ir);
    verifyRaceFree(compileProgram(*makeAllPairsAllReduce(6, config)).ir);
    verifyRaceFree(
        compileProgram(*makeHierarchicalAllReduce(2, 3, 2, config)).ir);
    verifyRaceFree(compileProgram(*makeTwoStepAllToAll(2, 3, config)).ir);
    verifyRaceFree(compileProgram(*makeAllToNext(2, 4, config)).ir);
    verifyRaceFree(
        compileProgram(*makeRabenseifnerAllReduce(8, config)).ir);
}

TEST(RaceChecker, DetectsMissingCrossTbDependency)
{
    // Two thread blocks on one rank write the same output chunk with
    // no ordering between them.
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 2;
    ir.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction copy;
        copy.op = IrOp::Copy;
        copy.srcBuf = BufferKind::Input;
        copy.srcOff = t;
        copy.dstBuf = BufferKind::Output;
        copy.dstOff = 0;
        tb.steps.push_back(copy);
        ir.gpus[0].threadBlocks.push_back(tb);
    }
    try {
        verifyRaceFree(ir);
        FAIL() << "race not detected";
    } catch (const VerificationError &error) {
        EXPECT_NE(std::string(error.what()).find("data race"),
                  std::string::npos);
    }
}

TEST(RaceChecker, DependencyMakesItOrdered)
{
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 2;
    ir.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction copy;
        copy.op = IrOp::Copy;
        copy.srcBuf = BufferKind::Input;
        copy.srcOff = t;
        copy.dstBuf = BufferKind::Output;
        copy.dstOff = 0;
        if (t == 1)
            copy.deps.push_back(IrDep{ 0, 0 });
        tb.steps.push_back(copy);
        ir.gpus[0].threadBlocks.push_back(tb);
    }
    ir.gpus[0].threadBlocks[0].steps[0].hasDep = true;
    verifyRaceFree(ir);
}

TEST(RaceChecker, DisjointFractionsDoNotConflict)
{
    // Two unordered thread blocks write complementary halves.
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 1;
    ir.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction copy;
        copy.op = IrOp::Copy;
        copy.srcBuf = BufferKind::Input;
        copy.dstBuf = BufferKind::Output;
        copy.splitIdx = t;
        copy.splitCount = 2;
        tb.steps.push_back(copy);
        ir.gpus[0].threadBlocks.push_back(tb);
    }
    verifyRaceFree(ir);
}

TEST(RaceChecker, CommunicationEdgesProvideOrder)
{
    // Rank 0 sends; rank 1 receives then reads the landing spot —
    // ordered through the communication edge, not a semaphore.
    IrProgram ir;
    ir.numRanks = 2;
    ir.gpus.resize(2);
    for (int r = 0; r < 2; r++) {
        ir.gpus[r].rank = r;
        ir.gpus[r].inputChunks = 1;
        ir.gpus[r].outputChunks = 1;
        ir.gpus[r].scratchChunks = 1;
    }
    IrThreadBlock sender;
    sender.id = 0;
    sender.sendPeer = 1;
    IrInstruction send;
    send.op = IrOp::Send;
    send.srcBuf = BufferKind::Input;
    sender.steps.push_back(send);
    ir.gpus[0].threadBlocks.push_back(sender);

    IrThreadBlock receiver;
    receiver.id = 0;
    receiver.recvPeer = 0;
    IrInstruction recv;
    recv.op = IrOp::Recv;
    recv.dstBuf = BufferKind::Scratch;
    receiver.steps.push_back(recv);
    IrInstruction use;
    use.op = IrOp::Copy;
    use.srcBuf = BufferKind::Scratch;
    use.dstBuf = BufferKind::Output;
    receiver.steps.push_back(use);
    ir.gpus[1].threadBlocks.push_back(receiver);

    verifyRaceFree(ir);
}

TEST(RaceChecker, CyclicDependenciesRejected)
{
    IrProgram ir;
    ir.numRanks = 1;
    ir.gpus.resize(1);
    ir.gpus[0].rank = 0;
    ir.gpus[0].inputChunks = 1;
    ir.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction nop;
        nop.op = IrOp::Nop;
        nop.deps.push_back(IrDep{ 1 - t, 0 });
        tb.steps.push_back(nop);
        ir.gpus[0].threadBlocks.push_back(tb);
    }
    EXPECT_THROW(verifyRaceFree(ir), VerificationError);
}

} // namespace
} // namespace mscclang
