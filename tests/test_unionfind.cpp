/**
 * @file
 * The lock-free concurrent union-find and the chain-condensed race
 * verifier built on it: structural invariants (monotone roots, the
 * deterministic partition), a multi-threaded stress run (the TSan
 * configuration's target for the contraction path), and differential
 * verdicts — the condensed engine must agree with the reference
 * engine message-for-message on clean and racy programs at every
 * thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "collectives/classic.h"
#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "compiler/unionfind.h"
#include "compiler/verifier.h"

namespace mscclang {
namespace {

TEST(UnionFind, BasicSetAlgebra)
{
    ConcurrentUnionFind uf(8);
    EXPECT_EQ(uf.size(), 8u);
    for (size_t i = 0; i < 8; i++)
        EXPECT_EQ(uf.find(i), i);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_FALSE(uf.unite(1, 0));
    EXPECT_TRUE(uf.sameSet(0, 1));
    EXPECT_FALSE(uf.sameSet(0, 2));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_TRUE(uf.unite(0, 3));
    EXPECT_TRUE(uf.sameSet(1, 2));
    EXPECT_FALSE(uf.sameSet(1, 4));
}

TEST(UnionFind, RootIsTheMaximumOfItsSet)
{
    // Monotone linking makes the root of every set its largest
    // element: each link's winner is the larger root, and a
    // singleton's root is itself. This is the determinism the chain
    // contraction leans on, so pin it.
    ConcurrentUnionFind uf(16);
    uf.unite(3, 7);
    uf.unite(7, 1);
    uf.unite(0, 1);
    EXPECT_EQ(uf.find(0), 7u);
    EXPECT_EQ(uf.find(1), 7u);
    EXPECT_EQ(uf.find(3), 7u);
    uf.unite(0, 15);
    EXPECT_EQ(uf.find(3), 15u);
    uf.unite(9, 8);
    EXPECT_EQ(uf.find(8), 9u);
}

TEST(UnionFind, ConcurrentStressPartitionIsDeterministic)
{
    // 64k elements in blocks of 64; the chain edges of every block
    // are shuffled across 8 threads. Whatever the interleaving, the
    // final partition must be exactly the blocks, with each block's
    // maximum as root.
    constexpr size_t kCount = 1 << 16;
    constexpr size_t kBlock = 64;
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t i = 0; i < kCount; i++) {
        if ((i + 1) % kBlock != 0)
            edges.push_back({ i, i + 1 });
    }
    std::mt19937 rng(12345);
    std::shuffle(edges.begin(), edges.end(), rng);

    ConcurrentUnionFind uf(kCount);
    constexpr int kThreads = 8;
    std::vector<std::thread> pool;
    size_t stride = (edges.size() + kThreads - 1) / kThreads;
    for (int t = 0; t < kThreads; t++) {
        size_t lo = t * stride;
        size_t hi = std::min(edges.size(), lo + stride);
        pool.emplace_back([&uf, &edges, lo, hi]() {
            for (size_t e = lo; e < hi; e++)
                uf.unite(edges[e].first, edges[e].second);
        });
    }
    for (std::thread &t : pool)
        t.join();

    for (size_t i = 0; i < kCount; i++) {
        size_t block_max = (i / kBlock) * kBlock + kBlock - 1;
        ASSERT_EQ(uf.find(i), block_max) << "element " << i;
    }
    EXPECT_FALSE(uf.sameSet(0, kBlock));
    EXPECT_TRUE(uf.sameSet(1, kBlock - 1));
}

/**
 * Runs both race engines on @p ir at several thread counts and
 * returns the common verdict ("" = race free), failing the test if
 * any two runs disagree.
 */
std::string
verdictOf(const IrProgram &ir)
{
    auto run = [&](void (*engine)(const IrProgram &, int),
                   int threads) -> std::string {
        try {
            engine(ir, threads);
            return std::string();
        } catch (const VerificationError &error) {
            return error.what();
        }
    };
    std::string expected = run(&verifyRaceFreeReference, 1);
    for (int threads : { 1, 2, 8 }) {
        EXPECT_EQ(run(&verifyRaceFreeReference, threads), expected)
            << "reference engine, threads " << threads;
        EXPECT_EQ(run(&verifyRaceFree, threads), expected)
            << "chain engine, threads " << threads;
    }
    return expected;
}

TEST(UnionFind, DifferentialVerdictsOnFactorySuite)
{
    AlgoConfig config;
    config.instances = 2;
    std::vector<IrProgram> irs;
    irs.push_back(compileProgram(*makeRingAllReduce(6, 3, config)).ir);
    irs.push_back(compileProgram(*makeAllPairsAllReduce(6, config)).ir);
    irs.push_back(
        compileProgram(*makeHierarchicalAllReduce(2, 4, 2, config)).ir);
    irs.push_back(
        compileProgram(*makeTwoStepAllToAll(2, 3, config)).ir);
    irs.push_back(compileProgram(*makeAllToNext(2, 4, config)).ir);
    irs.push_back(
        compileProgram(*makeRabenseifnerAllReduce(8, config)).ir);
    irs.push_back(
        compileProgram(*makeHierarchicalAllGather(2, 4, config)).ir);
    AlgoConfig split;
    split.hierSplit = 2;
    irs.push_back(
        compileProgram(*makeHierarchicalAllReduce(2, 4, 2, split)).ir);
    for (size_t i = 0; i < irs.size(); i++)
        EXPECT_EQ(verdictOf(irs[i]), "") << "program " << i;
}

TEST(UnionFind, DifferentialVerdictsAboveTheSerialThreshold)
{
    // Big enough (> 4096 instructions) that the per-rank checks
    // really fan out across the worker pool.
    AlgoConfig config;
    config.instances = 4;
    IrProgram ir =
        compileProgram(*makeRingAllReduce(32, 2, config)).ir;
    int instrs = 0;
    for (const IrGpu &gpu : ir.gpus) {
        for (const IrThreadBlock &tb : gpu.threadBlocks)
            instrs += static_cast<int>(tb.steps.size());
    }
    EXPECT_GT(instrs, 4096);
    EXPECT_EQ(verdictOf(ir), "");
}

TEST(UnionFind, DifferentialVerdictsOnRacyPrograms)
{
    // Strip every cross-thread-block dependency from a compiled
    // hierarchical program (whose phase handoffs on a rank are
    // ordered by deps, not FIFO edges): the verifier must flag a
    // race, and both engines must name the same pair in the same
    // words.
    AlgoConfig config;
    config.instances = 2;
    IrProgram ir =
        compileProgram(*makeHierarchicalAllReduce(2, 4, 2, config)).ir;
    for (IrGpu &gpu : ir.gpus) {
        for (IrThreadBlock &tb : gpu.threadBlocks) {
            for (IrInstruction &instr : tb.steps)
                instr.deps.clear();
        }
    }
    std::string verdict = verdictOf(ir);
    EXPECT_NE(verdict.find("data race"), std::string::npos) << verdict;

    // The two-thread-block write-write race from the race checker
    // suite, with the exact message pinned.
    IrProgram racy;
    racy.numRanks = 1;
    racy.gpus.resize(1);
    racy.gpus[0].rank = 0;
    racy.gpus[0].inputChunks = 2;
    racy.gpus[0].outputChunks = 1;
    for (int t = 0; t < 2; t++) {
        IrThreadBlock tb;
        tb.id = t;
        IrInstruction copy;
        copy.op = IrOp::Copy;
        copy.srcBuf = BufferKind::Input;
        copy.srcOff = t;
        copy.dstBuf = BufferKind::Output;
        copy.dstOff = 0;
        tb.steps.push_back(copy);
        racy.gpus[0].threadBlocks.push_back(tb);
    }
    EXPECT_EQ(verdictOf(racy),
              "data race: rank 0 tb 0 step 0 and tb 1 step 0 access "
              "o[0] unordered");
}

TEST(UnionFind, FifoImbalanceReportedIdentically)
{
    // An unmatched send must be rejected by both engines with the
    // same connection named.
    IrProgram ir;
    ir.numRanks = 2;
    ir.gpus.resize(2);
    for (int r = 0; r < 2; r++) {
        ir.gpus[r].rank = r;
        ir.gpus[r].inputChunks = 1;
        ir.gpus[r].outputChunks = 1;
    }
    IrThreadBlock sender;
    sender.id = 0;
    sender.sendPeer = 1;
    IrInstruction send;
    send.op = IrOp::Send;
    send.srcBuf = BufferKind::Input;
    sender.steps.push_back(send);
    ir.gpus[0].threadBlocks.push_back(sender);
    EXPECT_EQ(verdictOf(ir),
              "race check: connection 0 -> 1 channel 0 has 1 sends "
              "but 0 receives; FIFO pairing requires equal counts");
}

} // namespace
} // namespace mscclang
