/**
 * @file
 * Cross-cutting tests: the out-of-place Ring AllReduce, algorithms
 * on the DGX-1's restricted connectivity, per-resource utilization
 * accounting, protocol table sanity, and the reference oracle.
 */

#include <gtest/gtest.h>

#include "collectives/collectives.h"
#include "common/error.h"
#include "runtime/protocol.h"
#include "runtime/reference.h"
#include "sim/flow_network.h"
#include "test_util.h"

namespace mscclang {
namespace {

TEST(OutOfPlace, RingAllReduceLandsInOutputBuffer)
{
    Topology topo = makeGeneric(1, 4);
    auto prog = makeRingAllReduceOutOfPlace(4, 2, {});
    prog->checkPostcondition();
    EXPECT_EQ(testing::runAndCheck(topo, *prog, 4 * 512 * 4), "");
}

TEST(OutOfPlace, InputBufferSurvives)
{
    Topology topo = makeGeneric(1, 4);
    auto prog = makeRingAllReduceOutOfPlace(4, 1, {});
    Compiled out = compileProgram(*prog);
    EXPECT_FALSE(out.ir.inPlace);
    Communicator comm(topo);
    auto inputs = testing::fillInputs(comm, out.ir, 4 * 512 * 4);
    RunOptions run;
    run.bytes = 4 * 512 * 4;
    run.dataMode = true;
    comm.runProgram(out.ir, run);
    // Out-of-place: the final AllGather never touches the reduced
    // input chunks except chunk r on rank r, so chunk (r+1)%R is
    // partially reduced but chunk slots the RS phase never wrote on
    // this rank keep their original values. Spot-check one: rank 0's
    // input chunk 0 is written only by the RS traversal ending at
    // rank 0 — but chunk 1's traversal never writes rank 0's chunk 2
    // start... simply assert the buffer is not identical to the
    // output (the output holds the global sums).
    EXPECT_NE(comm.store().input(0), comm.store().output(0));
}

TEST(Dgx1, HamiltonianRingAllReduce)
{
    // 0-1-2-3-7-6-5-4-0 is a Hamiltonian cycle of the hybrid
    // cube-mesh: a ring AllReduce over that order must compile with
    // connectivity checking and run correctly.
    Topology dgx1 = makeDgx1();
    std::vector<Rank> cycle{ 0, 1, 2, 3, 7, 6, 5, 4 };
    auto coll = std::make_shared<AllReduceCollective>(8, 8);
    ProgramOptions options;
    options.name = "dgx1_ring";
    Program prog(coll, options);
    buildRingReduceScatter(prog, cycle, 0, 1);
    buildRingAllGather(prog, cycle, 0, 1);
    prog.checkPostcondition();
    CompileOptions copts;
    copts.topology = &dgx1;
    EXPECT_EQ(testing::runAndCheck(dgx1, prog, 8 * 256 * 4, copts),
              "");
}

TEST(Dgx1, NonAdjacentProgramRejected)
{
    Topology dgx1 = makeDgx1();
    auto prog = makeAllPairsAllReduce(8, {}); // needs all-to-all links
    CompileOptions copts;
    copts.topology = &dgx1;
    EXPECT_THROW(compileProgram(*prog, copts), CompileError);
}

TEST(FlowNetwork, ResourceBytesAccounted)
{
    MachineParams params;
    params.nvlinkGpuBwGBps = 10.0;
    Topology topo = makeGeneric(1, 2, params);
    EventQueue events;
    FlowNetwork net(topo, events);
    const Route &route = topo.route(0, 1);
    net.startFlow(route.resources, 100.0, 5000.0, [] {});
    events.run();
    for (ResourceId r : route.resources)
        EXPECT_NEAR(net.resourceBytes(r), 5000.0, 1e-3);
    // Unused resources saw nothing.
    for (ResourceId r : topo.route(1, 0).resources)
        EXPECT_NEAR(net.resourceBytes(r), 0.0, 1e-9);
    EXPECT_THROW(net.resourceBytes(-1), RuntimeError);
}

TEST(Protocols, TableOrderingMatchesThePaper)
{
    ProtocolParams ll = protocolParams(Protocol::LL);
    ProtocolParams ll128 = protocolParams(Protocol::LL128);
    ProtocolParams simple = protocolParams(Protocol::Simple);
    ProtocolParams direct = protocolParams(Protocol::Direct);
    // "Simple has the highest bandwidth and latency, LL the lowest
    // bandwidth and latency, LL128 in between" (§6.1).
    EXPECT_LT(ll.efficiency, ll128.efficiency);
    EXPECT_LT(ll128.efficiency, simple.efficiency + 0.2);
    EXPECT_LT(ll.nvAlphaUs, ll128.nvAlphaUs);
    EXPECT_LT(ll128.nvAlphaUs, simple.nvAlphaUs);
    // SCCL's direct protocol: full efficiency, costly sync (§7.5).
    EXPECT_DOUBLE_EQ(direct.efficiency, 1.0);
    EXPECT_GT(direct.nvAlphaUs, simple.nvAlphaUs);
    // Slot geometry within the paper's stated bounds (§6.1).
    for (const ProtocolParams &p : { ll, ll128, simple }) {
        EXPECT_GE(p.slots, 1);
        EXPECT_LE(p.slots, 8);
        EXPECT_GT(p.slotBytes, 0u);
    }
    EXPECT_GT(protocolAlphaUs(simple, LinkType::InfiniBand),
              protocolAlphaUs(simple, LinkType::NvLink));
}

TEST(Reference, MatchesHandComputedSums)
{
    AllReduceCollective coll(2, 2);
    std::vector<std::vector<float>> inputs = {
        { 1, 2, 3, 4 }, { 10, 20, 30, 40 }
    };
    auto outputs = computeReference(coll, inputs, ReduceOp::Sum);
    ASSERT_EQ(outputs.size(), 2u);
    EXPECT_EQ(outputs[0], (std::vector<float>{ 11, 22, 33, 44 }));
    EXPECT_EQ(outputs[1], outputs[0]);
}

TEST(Reference, MaxOperatorAndGatherShapes)
{
    AllGatherCollective gather(2, 1);
    std::vector<std::vector<float>> inputs = { { 1, 2 }, { 3, 4 } };
    auto outputs = computeReference(gather, inputs, ReduceOp::Max);
    EXPECT_EQ(outputs[0], (std::vector<float>{ 1, 2, 3, 4 }));

    AllReduceCollective reduce(2, 1);
    auto maxed = computeReference(reduce, inputs, ReduceOp::Max);
    EXPECT_EQ(maxed[0], (std::vector<float>{ 3, 4 }));
}

TEST(Reference, UnconstrainedChunksAreSkipped)
{
    AllToNextCollective coll(2, 1);
    std::vector<std::vector<float>> inputs = { { 5 }, { 7 } };
    std::vector<std::vector<float>> actual = { { 123 /* garbage */ },
                                               { 5 } };
    // Rank 0's output is unconstrained; rank 1 must hold rank 0's
    // buffer.
    EXPECT_EQ(compareToReference(coll, inputs, actual, ReduceOp::Sum),
              "");
    actual[1][0] = 99;
    EXPECT_NE(compareToReference(coll, inputs, actual, ReduceOp::Sum),
              "");
}

TEST(Reference, ReportsFirstMismatchPrecisely)
{
    AllReduceCollective coll(2, 1);
    std::vector<std::vector<float>> inputs = { { 1, 1 }, { 2, 2 } };
    std::vector<std::vector<float>> actual = { { 3, 3 }, { 3, 9 } };
    std::string report =
        compareToReference(coll, inputs, actual, ReduceOp::Sum);
    EXPECT_NE(report.find("rank 1"), std::string::npos);
    EXPECT_NE(report.find("element 1"), std::string::npos);
}

} // namespace
} // namespace mscclang
