/**
 * @file
 * Tests for the runtime interpreter (paper §6) and the Communicator:
 * determinism, tiling/pipelining behavior, protocol cost ordering,
 * kernel launch accounting, composed multi-kernel persistence,
 * algorithm selection windows, and runtime failure detection.
 */

#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "collectives/collectives.h"
#include "common/error.h"
#include "compiler/compiler.h"
#include "runtime/communicator.h"
#include "test_util.h"

namespace mscclang {
namespace {

IrProgram
compiledRing(int ranks, Protocol proto, int instances = 1)
{
    AlgoConfig config;
    config.protocol = proto;
    config.instances = instances;
    return compileProgram(*makeRingAllReduce(ranks, 1, config)).ir;
}

TEST(Interpreter, TimingIsDeterministic)
{
    Topology topo = makeNdv4(1);
    IrProgram ir = compiledRing(8, Protocol::LL128, 4);
    Communicator comm(topo);
    RunOptions run;
    run.bytes = 1 << 20;
    double first = comm.runProgram(ir, run).timeUs;
    double second = comm.runProgram(ir, run).timeUs;
    EXPECT_DOUBLE_EQ(first, second);
    EXPECT_GT(first, 0.0);
}

TEST(Interpreter, TimeGrowsWithSize)
{
    Topology topo = makeNdv4(1);
    IrProgram ir = compiledRing(8, Protocol::Simple, 4);
    Communicator comm(topo);
    double last = 0.0;
    for (std::uint64_t bytes : { 1ULL << 16, 1ULL << 20, 1ULL << 24 }) {
        RunOptions run;
        run.bytes = bytes;
        double us = comm.runProgram(ir, run).timeUs;
        EXPECT_GT(us, last);
        last = us;
    }
}

TEST(Interpreter, LaunchOverheadIsIncluded)
{
    Topology topo = makeNdv4(1);
    IrProgram ir = compiledRing(8, Protocol::LL);
    Communicator comm(topo);
    RunOptions run;
    run.bytes = 1 << 10;
    EXPECT_GE(comm.runProgram(ir, run).timeUs,
              topo.params().kernelLaunchUs);
}

TEST(Interpreter, LLHasLowerLatencySimpleHigherBandwidth)
{
    Topology topo = makeNdv4(1);
    IrProgram ll = compiledRing(8, Protocol::LL, 4);
    IrProgram simple = compiledRing(8, Protocol::Simple, 4);
    Communicator comm(topo);
    RunOptions small;
    small.bytes = 1 << 10;
    RunOptions big;
    big.bytes = 64ULL << 20;
    EXPECT_LT(comm.runProgram(ll, small).timeUs,
              comm.runProgram(simple, small).timeUs);
    EXPECT_GT(comm.runProgram(ll, big).timeUs,
              comm.runProgram(simple, big).timeUs);
}

TEST(Interpreter, DeeperTilingHelpsPhasedAlgorithms)
{
    Topology topo = makeNdv4(2);
    AlgoConfig config;
    config.protocol = Protocol::Simple;
    config.instances = 2;
    IrProgram ir = compileProgram(
        *makeHierarchicalAllReduce(2, 8, 2, config)).ir;
    Communicator comm(topo);
    RunOptions serial;
    serial.bytes = 256ULL << 20;
    serial.maxTilesPerChunk = 1;
    RunOptions piped = serial;
    piped.maxTilesPerChunk = 8;
    EXPECT_GT(comm.runProgram(ir, serial).timeUs,
              comm.runProgram(ir, piped).timeUs * 1.2);
}

TEST(Interpreter, MessageAndWireStatsPopulated)
{
    Topology topo = makeNdv4(1);
    IrProgram ir = compiledRing(8, Protocol::LL);
    Communicator comm(topo);
    RunOptions run;
    run.bytes = 1 << 20;
    run.maxTilesPerChunk = 1; // one message per instruction
    RunResult result = comm.runProgram(ir, run);
    // Ring over 8 ranks, 8 chunk blocks x 14 hops = 112 messages.
    EXPECT_EQ(result.stats.messages, 112u);
    // LL doubles the wire bytes.
    double moved = 2.0 * 7.0 / 8.0 * (1 << 20) * 8; // algorithm bytes
    EXPECT_NEAR(result.stats.wireBytes, 2.0 * moved, moved * 0.05);
}

TEST(Interpreter, EmptyProgramFinishesAtLaunch)
{
    Topology topo = makeGeneric(1, 2);
    IrProgram ir;
    ir.numRanks = 2;
    ir.gpus.resize(2);
    ir.gpus[0].rank = 0;
    ir.gpus[1].rank = 1;
    ir.gpus[0].inputChunks = ir.gpus[1].inputChunks = 1;
    ir.gpus[0].outputChunks = ir.gpus[1].outputChunks = 1;
    ExecOptions options;
    ExecStats stats = runIr(topo, ir, options);
    EXPECT_EQ(stats.messages, 0u);
}

TEST(Interpreter, RuntimeDetectsWedgedIr)
{
    // A receive with no matching send anywhere: the event queue
    // drains without completing and the runtime reports the wedge.
    Topology topo = makeGeneric(1, 2);
    IrProgram ir;
    ir.numRanks = 2;
    ir.gpus.resize(2);
    for (int r = 0; r < 2; r++) {
        ir.gpus[r].rank = r;
        ir.gpus[r].inputChunks = 1;
        ir.gpus[r].outputChunks = 1;
    }
    IrThreadBlock tb;
    tb.id = 0;
    tb.recvPeer = 1;
    IrInstruction recv;
    recv.op = IrOp::Recv;
    recv.dstBuf = BufferKind::Output;
    tb.steps.push_back(recv);
    ir.gpus[0].threadBlocks.push_back(tb);
    ExecOptions options;
    EXPECT_THROW(runIr(topo, ir, options), RuntimeError);
}

TEST(Interpreter, DataModeNeedsDivisibleChunks)
{
    Topology topo = makeGeneric(1, 4);
    IrProgram ir = compiledRing(4, Protocol::Simple);
    DataStore store;
    // 4 ranks, chunkFactor 4: 5 floats do not divide into 4 chunks.
    EXPECT_THROW(store.configure(ir, 5 * sizeof(float)),
                 RuntimeError);
    EXPECT_THROW(store.configure(ir, 6), RuntimeError); // not float
    store.configure(ir, 4 * 16 * sizeof(float));
    EXPECT_EQ(store.input(0).size(), 64u);
}

TEST(Interpreter, ComposedKernelsShareScratchState)
{
    // The CUDA two-step baseline only works if scratch written by
    // kernel 1 is visible to kernel 2 — covered functionally here.
    Topology topo = makeGeneric(2, 2);
    std::vector<IrProgram> kernels = cudaTwoStepAllToAll(topo, 1 << 20);
    std::vector<const IrProgram *> refs;
    for (const IrProgram &k : kernels)
        refs.push_back(&k);
    AllToAllCollective coll(4, 1);
    EXPECT_EQ(testing::runIrsAndCheck(topo, refs, coll, 4 * 512 * 4),
              "");
}

TEST(Interpreter, ComposedTimeExceedsFusedTime)
{
    Topology topo = makeNdv4(2);
    AlgoConfig config;
    config.protocol = Protocol::Simple;
    config.instances = 4;
    IrProgram fused = compileProgram(
        *makeHierarchicalAllReduce(2, 8, 2, config)).ir;
    std::vector<IrProgram> kernels =
        composedHierarchicalAllReduce(topo, 64ULL << 20);
    std::vector<const IrProgram *> refs;
    for (const IrProgram &k : kernels)
        refs.push_back(&k);
    Communicator comm(topo);
    RunOptions run;
    run.bytes = 64ULL << 20;
    EXPECT_LT(comm.runProgram(fused, run).timeUs,
              comm.runComposed(refs, run).timeUs);
}

// ------------------------------------------------------------------
// Communicator registry.

TEST(Communicator, SelectsBySizeWindow)
{
    Topology topo = makeNdv4(1);
    IrProgram small = compiledRing(8, Protocol::LL);
    small.name = "small_algo";
    IrProgram big = compiledRing(8, Protocol::Simple);
    big.name = "big_algo";
    Communicator comm(topo);
    comm.registerAlgorithm(small, 0, 1 << 20);
    comm.registerAlgorithm(big, (1 << 20) + 1, 1ULL << 40);
    RunOptions run;
    run.bytes = 1 << 10;
    EXPECT_EQ(comm.run("allreduce", run).algorithm, "small_algo");
    run.bytes = 1ULL << 30;
    EXPECT_EQ(comm.run("allreduce", run).algorithm, "big_algo");
}

TEST(Communicator, FallsBackOutsideWindows)
{
    Topology topo = makeNdv4(1);
    IrProgram algo = compiledRing(8, Protocol::LL);
    Communicator comm(topo);
    comm.registerAlgorithm(algo, 0, 1 << 10);
    comm.registerFallback("allreduce", [&](std::uint64_t bytes) {
        return ncclAllReduceIr(topo, bytes);
    });
    RunOptions run;
    run.bytes = 1 << 20;
    RunResult result = comm.run("allreduce", run);
    EXPECT_NE(result.algorithm.find("fallback"), std::string::npos);
}

TEST(Communicator, MissingAlgorithmIsAnError)
{
    Topology topo = makeNdv4(1);
    Communicator comm(topo);
    RunOptions run;
    EXPECT_THROW(comm.run("allreduce", run), RuntimeError);
}

TEST(Communicator, RejectsForeignPrograms)
{
    Topology topo = makeNdv4(1);
    IrProgram four_ranks = compiledRing(4, Protocol::LL);
    Communicator comm(topo);
    EXPECT_THROW(comm.registerAlgorithm(four_ranks, 0, 100),
                 RuntimeError);
    IrProgram algo = compiledRing(8, Protocol::LL);
    EXPECT_THROW(comm.registerAlgorithm(algo, 10, 5), RuntimeError);
    EXPECT_THROW(comm.runComposed({}, RunOptions{}), RuntimeError);
}

TEST(Communicator, WindowBoundariesAreInclusive)
{
    Topology topo = makeNdv4(1);
    IrProgram algo = compiledRing(8, Protocol::LL);
    algo.name = "windowed";
    Communicator comm(topo);
    comm.registerAlgorithm(algo, 1024, 2048);
    RunOptions run;
    run.bytes = 1024;
    EXPECT_EQ(comm.run("allreduce", run).algorithm, "windowed");
    run.bytes = 2048;
    EXPECT_EQ(comm.run("allreduce", run).algorithm, "windowed");
    run.bytes = 2049;
    EXPECT_THROW(comm.run("allreduce", run), RuntimeError);
}

} // namespace
} // namespace mscclang
