/**
 * @file
 * Functional and property tests for the classic algorithm library
 * (trees, recursive halving/doubling, broadcasts, hierarchical
 * AllGather): every algorithm must trace, verify, and execute to
 * oracle-identical data across machine shapes and protocols.
 */

#include <gtest/gtest.h>

#include "collectives/classic.h"
#include "common/error.h"
#include "test_util.h"

namespace mscclang {
namespace {

using testing::runAndCheck;

TEST(Classic, DoubleBinaryTreeAllReduce)
{
    for (int ranks : { 2, 3, 4, 7, 8, 12 }) {
        Topology topo = makeGeneric(1, ranks);
        auto prog = makeDoubleBinaryTreeAllReduce(ranks, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 2 * 512 * 4), "")
            << ranks << " ranks";
    }
    EXPECT_THROW(makeDoubleBinaryTreeAllReduce(1, {}), Error);
}

TEST(Classic, TreesBalanceInteriorWork)
{
    // In the mirrored pair, no rank is a pure serialization point:
    // the two trees' roots differ.
    auto prog = makeDoubleBinaryTreeAllReduce(8, {});
    Compiled out = compileProgram(*prog);
    EXPECT_GT(out.stats.channels, 1);
}

TEST(Classic, RecursiveHalvingReduceScatter)
{
    for (int ranks : { 2, 4, 8, 16 }) {
        Topology topo = makeGeneric(1, ranks);
        auto prog = makeRecursiveHalvingReduceScatter(ranks, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog,
                              static_cast<std::uint64_t>(ranks) * 256 *
                                  4),
                  "")
            << ranks << " ranks";
    }
    EXPECT_THROW(makeRecursiveHalvingReduceScatter(6, {}), Error);
}

TEST(Classic, RecursiveDoublingAllGather)
{
    for (int ranks : { 2, 4, 8, 16 }) {
        Topology topo = makeGeneric(1, ranks);
        auto prog = makeRecursiveDoublingAllGather(ranks, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 1024), "")
            << ranks << " ranks";
    }
    EXPECT_THROW(makeRecursiveDoublingAllGather(3, {}), Error);
}

TEST(Classic, RecursiveDoublingUsesLogRounds)
{
    auto prog = makeRecursiveDoublingAllGather(16, {});
    // 16 local placements + 4 rounds x 16 exchanges.
    EXPECT_EQ(prog->ops().size(), 16u + 4u * 16u);
}

TEST(Classic, RabenseifnerAllReduce)
{
    for (int ranks : { 2, 4, 8 }) {
        Topology topo = makeGeneric(1, ranks);
        auto prog = makeRabenseifnerAllReduce(ranks, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog,
                              static_cast<std::uint64_t>(ranks) * 512 *
                                  4),
                  "")
            << ranks << " ranks";
    }
}

TEST(Classic, RingBroadcast)
{
    for (Rank root : { 0, 2 }) {
        Topology topo = makeGeneric(1, 5);
        auto prog = makeRingBroadcast(5, root, 4, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 4 * 256 * 4), "")
            << "root " << root;
    }
}

TEST(Classic, BinomialBroadcast)
{
    for (int ranks : { 2, 5, 8, 13 }) {
        Topology topo = makeGeneric(1, ranks);
        auto prog = makeBinomialBroadcast(ranks, ranks / 2, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 1024), "")
            << ranks << " ranks";
    }
}

TEST(Classic, BinomialBroadcastHasLogDepth)
{
    auto prog = makeBinomialBroadcast(16, 0, {});
    Compiled out = compileProgram(*prog);
    // 4 rounds of doubling: critical path ~log2(16) + local place.
    EXPECT_LE(out.stats.chunkCriticalPath, 5);
}

TEST(Classic, HierarchicalAllGather)
{
    for (auto [nodes, gpus] : { std::pair{ 2, 3 }, { 2, 4 },
                                { 3, 2 } }) {
        Topology topo = makeGeneric(nodes, gpus);
        auto prog = makeHierarchicalAllGather(nodes, gpus, {});
        prog->checkPostcondition();
        EXPECT_EQ(runAndCheck(topo, *prog, 1024), "")
            << nodes << "x" << gpus;
    }
}

TEST(Classic, HierarchicalAllGatherAggregatesInterNode)
{
    // Cross-node messages must carry whole node blocks (count = G).
    auto prog = makeHierarchicalAllGather(2, 4, {});
    Compiled out = compileProgram(*prog);
    Topology topo = makeGeneric(2, 4);
    bool found_aggregated = false;
    for (const IrGpu &gpu : out.ir.gpus) {
        for (const IrThreadBlock &tb : gpu.threadBlocks) {
            if (tb.sendPeer < 0 ||
                topo.nodeOf(tb.sendPeer) == topo.nodeOf(gpu.rank)) {
                continue;
            }
            for (const IrInstruction &instr : tb.steps) {
                if (irOpSends(instr.op)) {
                    EXPECT_EQ(instr.count, 4);
                    found_aggregated = true;
                }
            }
        }
    }
    EXPECT_TRUE(found_aggregated);
}

TEST(Classic, ClassicAlgorithmsComposeWithInstancesAndProtocols)
{
    Topology topo = makeGeneric(1, 8);
    for (Protocol proto : { Protocol::LL, Protocol::Simple }) {
        AlgoConfig config;
        config.protocol = proto;
        config.instances = 2;
        EXPECT_EQ(runAndCheck(topo,
                              *makeRabenseifnerAllReduce(8, config),
                              8 * 512 * 4),
                  "");
        EXPECT_EQ(runAndCheck(topo,
                              *makeDoubleBinaryTreeAllReduce(8, config),
                              2 * 512 * 4),
                  "");
    }
}

} // namespace
} // namespace mscclang
