/**
 * @file
 * Unit tests for the compiler passes: Chunk DAG construction (paper
 * §4.1), lowering patterns (§4.2), the instruction fusion rewrites
 * (§4.3) with their side conditions, and the shadowing-precise
 * dependence analysis that enables cross-phase fusion.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "compiler/chunk_dag.h"
#include "compiler/compiler.h"

namespace mscclang {
namespace {

std::shared_ptr<AllReduceCollective>
allreduce(int ranks, int chunks)
{
    return std::make_shared<AllReduceCollective>(ranks, chunks);
}

int
countOps(const InstrGraph &graph, IrOp op)
{
    int count = 0;
    for (const InstrNode &node : graph.nodes()) {
        if (node.live && node.op == op)
            count++;
    }
    return count;
}

// ---------------------------------------------------------------
// Chunk DAG.

TEST(ChunkDag, TrueDependenceThroughChunkMovement)
{
    Program prog(allreduce(3, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0)
                     .copy(1, BufferKind::Scratch, 0);
    c.copy(2, BufferKind::Scratch, 0);

    ChunkDag dag(prog);
    ASSERT_EQ(dag.numOps(), 2);
    ASSERT_EQ(dag.edges().size(), 1u);
    EXPECT_EQ(dag.edges()[0].kind, DepKind::True);
    EXPECT_EQ(dag.edges()[0].from, 0);
    EXPECT_EQ(dag.edges()[0].to, 1);
    EXPECT_EQ(dag.criticalPathLength(), 2);
}

TEST(ChunkDag, FalseDependenceThroughIndexReuse)
{
    Program prog(allreduce(3, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(2, BufferKind::Scratch, 0);
    // Overwriting scratch 0 on rank 2 creates an output dependence.
    prog.chunk(1, BufferKind::Input, 0).copy(2, BufferKind::Scratch, 0);

    ChunkDag dag(prog);
    ASSERT_EQ(dag.edges().size(), 1u);
    EXPECT_EQ(dag.edges()[0].kind, DepKind::Output);
}

TEST(ChunkDag, IndependentOpsHaveNoEdges)
{
    Program prog(allreduce(4, 2));
    prog.chunk(0, BufferKind::Input, 0).copy(1, BufferKind::Scratch, 0);
    prog.chunk(2, BufferKind::Input, 1).copy(3, BufferKind::Scratch, 1);
    ChunkDag dag(prog);
    EXPECT_TRUE(dag.edges().empty());
    EXPECT_EQ(dag.criticalPathLength(), 1);
}

TEST(ChunkDag, DotRenderingMentionsEveryOp)
{
    Program prog(allreduce(2, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    prog.chunk(1, BufferKind::Input, 0).reduce(c);
    ChunkDag dag(prog);
    std::string dot = dag.toDot(prog);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0"), std::string::npos);
}

// ---------------------------------------------------------------
// Lowering (instruction generation).

TEST(Lowering, RemoteCopyBecomesSendRecv)
{
    Program prog(allreduce(2, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(1, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(graph.numLive(), 2);
    EXPECT_EQ(countOps(graph, IrOp::Send), 1);
    EXPECT_EQ(countOps(graph, IrOp::Recv), 1);
    // Matched by a communication edge.
    for (const InstrNode &node : graph.nodes()) {
        if (node.op == IrOp::Send) {
            EXPECT_EQ(node.sendPeer, 1);
            EXPECT_EQ(graph.node(node.commSucc).op, IrOp::Recv);
        }
    }
}

TEST(Lowering, RemoteReduceBecomesSendRrc)
{
    Program prog(allreduce(2, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    prog.chunk(1, BufferKind::Input, 0).reduce(c);
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(countOps(graph, IrOp::Send), 1);
    EXPECT_EQ(countOps(graph, IrOp::RecvReduceCopy), 1);
}

TEST(Lowering, LocalOpsStaySingleInstructions)
{
    Program prog(allreduce(2, 2));
    prog.chunk(0, BufferKind::Input, 0).copy(0, BufferKind::Scratch, 0);
    ChunkRef c = prog.chunk(0, BufferKind::Scratch, 0);
    prog.chunk(0, BufferKind::Input, 1).reduce(c);
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(countOps(graph, IrOp::Copy), 1);
    EXPECT_EQ(countOps(graph, IrOp::Reduce), 1);
    EXPECT_EQ(countOps(graph, IrOp::Send), 0);
}

TEST(Lowering, AliasedNoOpCopyIsDropped)
{
    // In-place: copying in[0] to out[0] on the same rank is the same
    // location and must vanish.
    Program prog(allreduce(2, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(0, BufferKind::Output, 0);
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(graph.numLive(), 0);
}

TEST(Lowering, InstancesExpandOps)
{
    ProgramOptions options;
    options.instances = 4;
    Program prog(allreduce(2, 1), options);
    prog.chunk(0, BufferKind::Input, 0).copy(1, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(countOps(graph, IrOp::Send), 4);
    // Sibling instances are independent: no processing edges.
    for (const InstrNode &node : graph.nodes())
        EXPECT_TRUE(graph.livePreds(node.id).empty());
}

TEST(Lowering, ParallelizeScopeMultipliesInstances)
{
    ProgramOptions options;
    options.instances = 2;
    Program prog(allreduce(2, 1), options);
    {
        ParallelizeScope scope = prog.parallelize(3);
        prog.chunk(0, BufferKind::Input, 0)
            .copy(1, BufferKind::Scratch, 0);
    }
    InstrGraph graph = lowerProgram(prog);
    EXPECT_EQ(countOps(graph, IrOp::Send), 6);
    for (const InstrNode &node : graph.nodes())
        EXPECT_EQ(node.splitCount, 6);
}

TEST(Lowering, ShadowedWriterDoesNotFeedReader)
{
    // w1 writes s[0]; w2 overwrites it; the read depends on w2 only
    // (w1 is shadowed) — the precision that enables fusing forwards
    // after phase transitions.
    Program prog(allreduce(3, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(2, BufferKind::Scratch, 0);
    prog.chunk(1, BufferKind::Input, 0).copy(2, BufferKind::Scratch, 0);
    prog.chunk(2, BufferKind::Scratch, 0)
        .copy(0, BufferKind::Scratch, 1);
    InstrGraph graph = lowerProgram(prog);
    // Find the send of the third op (reads s[0] on rank 2).
    const InstrNode *reader = nullptr;
    for (const InstrNode &node : graph.nodes()) {
        if (node.op == IrOp::Send && node.rank == 2)
            reader = &node;
    }
    ASSERT_NE(reader, nullptr);
    std::vector<int> preds = graph.livePreds(reader->id);
    ASSERT_EQ(preds.size(), 1u);
    // Its only predecessor is the SECOND recv (the visible writer).
    EXPECT_EQ(graph.node(preds[0]).op, IrOp::Recv);
    EXPECT_EQ(graph.node(preds[0]).recvPeer, 1);
}

// ---------------------------------------------------------------
// Fusion.

TEST(Fusion, RecvSendBecomesRcs)
{
    // 0 -> 1 -> 2 relay: the middle recv+send fuse.
    Program prog(allreduce(3, 1));
    prog.chunk(0, BufferKind::Input, 0)
        .copy(1, BufferKind::Scratch, 0)
        .copy(2, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    EXPECT_EQ(stats.rcs, 1);
    EXPECT_EQ(countOps(graph, IrOp::RecvCopySend), 1);
    EXPECT_EQ(graph.numLive(), 3); // send, rcs, recv
}

TEST(Fusion, RrcSendBecomesRrcs)
{
    // reduce at rank 1, result forwarded and also kept locally as
    // the final output -> rrcs (the store is live).
    Program prog(allreduce(3, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    c = prog.chunk(1, BufferKind::Input, 0).reduce(c);
    c.copy(2, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    EXPECT_EQ(stats.rrcs, 1);
    EXPECT_EQ(stats.rrs, 0); // in[0] at rank 1 is never overwritten
    EXPECT_EQ(countOps(graph, IrOp::RecvReduceCopySend), 1);
}

TEST(Fusion, DeadStoreBecomesRrs)
{
    // Same as above, but the reduced location is later overwritten
    // without being read -> the store is dead -> rrs.
    Program prog(allreduce(3, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0);
    c = prog.chunk(1, BufferKind::Input, 0).reduce(c);
    c.copy(2, BufferKind::Scratch, 0);
    prog.chunk(2, BufferKind::Input, 0).copy(1, BufferKind::Input, 0);
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    EXPECT_EQ(stats.rrcs, 1);
    EXPECT_EQ(stats.rrs, 1);
    EXPECT_EQ(countOps(graph, IrOp::RecvReduceSend), 1);
    EXPECT_EQ(countOps(graph, IrOp::RecvReduceCopySend), 0);
}

TEST(Fusion, LocalReaderBlocksRcs)
{
    // The received chunk is also reduced locally afterwards, so the
    // forwarding send is not the receive's only consumer — but fusion
    // is still legal because the send only needs the recv. What must
    // NOT happen is fusing when the send has extra predecessors.
    Program prog(allreduce(3, 2));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0)
                     .copy(1, BufferKind::Scratch, 0);
    // a second write the send ALSO depends on would block fusion;
    // reduce the received chunk into another location first:
    ChunkRef combined =
        prog.chunk(1, BufferKind::Input, 0).reduce(c);
    combined.copy(2, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    // recv(s0@1) -> LOCAL reduce -> send: the send's producer is the
    // local reduce, not a receive, so neither rcs nor rrcs applies.
    EXPECT_EQ(stats.rcs, 0);
    EXPECT_EQ(stats.rrcs + stats.rrs, 0);
    EXPECT_EQ(countOps(graph, IrOp::Reduce), 1);
}

TEST(Fusion, ChannelDirectiveMismatchBlocksFusion)
{
    Program prog(allreduce(3, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0)
                     .copy(1, BufferKind::Scratch, 0, OpOptions{ 0 });
    c.copy(2, BufferKind::Scratch, 0, OpOptions{ 1 });
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    EXPECT_EQ(stats.rcs, 0);
    EXPECT_EQ(countOps(graph, IrOp::Recv), 2);
}

TEST(Fusion, LongestPathSendWins)
{
    // One receive feeds two forwards; the one continuing the longer
    // chain is fused (paper §4.3).
    Program prog(allreduce(5, 1));
    ChunkRef c = prog.chunk(0, BufferKind::Input, 0)
                     .copy(1, BufferKind::Scratch, 0);
    c.copy(2, BufferKind::Scratch, 0); // short branch: ends here
    // long branch: 1 -> 3 -> 4
    c.copy(3, BufferKind::Scratch, 0).copy(4, BufferKind::Scratch, 0);
    InstrGraph graph = lowerProgram(prog);
    FusionStats stats = fuseInstructions(graph);
    // rank 1's recv fused with the send on the long branch, and rank
    // 3's relay fused as well.
    EXPECT_EQ(stats.rcs, 2);
    const InstrNode *fused_at_1 = nullptr;
    for (const InstrNode &node : graph.nodes()) {
        if (node.live && node.rank == 1 &&
            node.op == IrOp::RecvCopySend) {
            fused_at_1 = &node;
        }
    }
    ASSERT_NE(fused_at_1, nullptr);
    EXPECT_EQ(fused_at_1->sendPeer, 3);
}

TEST(Fusion, DepthsAreConsistentAfterFusion)
{
    auto prog = [] {
        Program p(allreduce(4, 1));
        ChunkRef c = p.chunk(0, BufferKind::Input, 0);
        for (int r = 1; r < 4; r++)
            c = p.chunk(r, BufferKind::Input, 0).reduce(c);
        return p.ops().size();
    };
    EXPECT_EQ(prog(), 3u);
}

// ---------------------------------------------------------------
// Compile stats plumbing.

TEST(CompileStats, CountsAreCoherent)
{
    ProgramOptions options;
    Program prog(allreduce(4, 4), options);
    for (int r = 0; r < 4; r++) {
        ChunkRef c = prog.chunk((r + 1) % 4, BufferKind::Input, r);
        for (int step = 1; step < 4; step++) {
            c = prog.chunk((r + 1 + step) % 4, BufferKind::Input, r)
                    .reduce(c);
        }
        for (int step = 1; step < 4; step++)
            c = c.copy((r + step) % 4, BufferKind::Input, r);
    }
    Compiled out = compileProgram(prog);
    EXPECT_EQ(out.stats.traceOps, 24);
    EXPECT_GT(out.stats.instrsBeforeFusion,
              out.stats.instrsAfterFusion);
    EXPECT_EQ(out.stats.totalInstructions,
              out.stats.instrsAfterFusion);
    EXPECT_EQ(out.stats.chunkCriticalPath, 6);
}

TEST(CompileStats, TopologyConnectivityEnforced)
{
    Topology dgx1 = makeDgx1();
    // GPU 0 and 7 are not NVLink-adjacent on a DGX-1.
    Program prog(allreduce(8, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(7, BufferKind::Scratch, 0);
    CompileOptions copts;
    copts.topology = &dgx1;
    EXPECT_THROW(compileProgram(prog, copts), CompileError);
}

TEST(CompileStats, RankCountMismatchEnforced)
{
    Topology topo = makeGeneric(1, 4);
    Program prog(allreduce(8, 1));
    prog.chunk(0, BufferKind::Input, 0).copy(1, BufferKind::Scratch, 0);
    CompileOptions copts;
    copts.topology = &topo;
    EXPECT_THROW(compileProgram(prog, copts), CompileError);
}

} // namespace
} // namespace mscclang
